"""Property: a fleet sweep is byte-identical to a serial local sweep.

The loopback fleet (two real worker processes, spawned once per module)
is driven through the same ``sweep_all`` entry point as a local run, over
Hypothesis-drawn workload subsets, geometry grids, and job counts.  The
contract covers the documents, the checkpoint journals the fleet writes,
and a local ``--resume`` from those journals.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cachesweep import sweep_all, workload_names
from repro.config import CacheConfig, SocConfig
from repro.core.resilience import RetryPolicy, SweepCheckpoint, sweep_key
from repro.fleet.executor import fleet_pool_factory
from repro.sim.artifact import TraceStore
from tests.fleet.conftest import FleetHarness

_L1S = [
    CacheConfig(size_bytes=1024, associativity=2),
    CacheConfig(size_bytes=2048, associativity=4),
]
_L2S = [
    CacheConfig(size_bytes=4096, associativity=4),
    CacheConfig(size_bytes=8192, associativity=8),
]
GRID = [SocConfig(l1=l1, l2=l2) for l1 in _L1S for l2 in _L2S]
FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.05, jitter=0.0)


def canon(document) -> str:
    return json.dumps(document, sort_keys=True)


def canon_data(documents) -> str:
    """Canon minus the ``batched`` engine-provenance flag.

    A fully-resumed sweep reports ``batched: false`` (rows came from the
    journal, not the batch engine) regardless of fleet vs. local, so the
    resume comparison covers the data: artifact, rows, failures.
    """
    return json.dumps(
        {
            name: {k: v for k, v in doc.items() if k != "batched"}
            for name, doc in documents.items()
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def fleet2(tmp_path_factory):
    harness = FleetHarness(tmp_path_factory.mktemp("fleet-identity"))
    harness.start_worker()
    harness.start_worker()
    yield harness
    harness.stop()


class TestFleetBitIdentity:
    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_fleet_matches_local_and_resumes(self, fleet2, data):
        names = data.draw(
            st.lists(
                st.sampled_from(workload_names()),
                min_size=1, max_size=2, unique=True,
            ),
            label="workloads",
        )
        socs = data.draw(
            st.lists(st.sampled_from(GRID), min_size=1, max_size=3, unique=True),
            label="socs",
        )
        jobs = data.draw(st.integers(min_value=2, max_value=4), label="jobs")
        base = Path(tempfile.mkdtemp(prefix="fleet-identity-"))

        local = sweep_all(
            names, socs=socs, store=TraceStore(base / "local"), jobs=1
        )
        checkpoint = str(base / "sweep.ckpt")
        fleet = sweep_all(
            names, socs=socs, store=TraceStore(base / "fleet"),
            jobs=jobs, retry_policy=FAST, checkpoint=checkpoint,
            pool_factory=fleet_pool_factory(fleet2.manifest()),
        )
        assert canon(fleet) == canon(local)

        # The journals the fleet wrote resume a local run to the same
        # bytes — checkpoint/resume semantics are fleet-agnostic.
        resumed = sweep_all(
            names, socs=socs, store=TraceStore(base / "fleet"),
            jobs=1, retry_policy=FAST, checkpoint=checkpoint, resume=True,
            pool_factory=None,
        )
        assert canon_data(resumed) == canon_data(local)

    def test_fleet_checkpoint_matches_local_checkpoint(self, fleet2):
        """The journal entries themselves, not just the documents, agree."""
        names = [workload_names()[0]]
        # Two distinct L1 geometries, so the single-workload path shards
        # across the fleet (one shard per L1 group) instead of staying
        # in-process.
        socs = [GRID[0], GRID[3]]
        base = Path(tempfile.mkdtemp(prefix="fleet-journal-"))
        local_ckpt = str(base / "local.ckpt")
        fleet_ckpt = str(base / "fleet.ckpt")

        local = sweep_all(
            names, socs=socs, store=TraceStore(base / "local"), jobs=1,
            retry_policy=FAST, checkpoint=local_ckpt,
        )
        fleet = sweep_all(
            names, socs=socs, store=TraceStore(base / "fleet"),
            jobs=2, retry_policy=FAST, checkpoint=fleet_ckpt,
            pool_factory=fleet_pool_factory(fleet2.manifest()),
        )
        assert canon(fleet) == canon(local)

        from repro.sim.timing import TimingParameters

        # The same journal key ConfigSweep derives for this sweep.
        artifact = local[names[0]]["artifact"]
        key = "%s:%s" % (artifact, sweep_key((TimingParameters(), 2.0)))
        local_journal = SweepCheckpoint(local_ckpt, key=key)
        fleet_journal = SweepCheckpoint(fleet_ckpt, key=key)
        try:
            local_entries = local_journal.entries()
            fleet_entries = fleet_journal.entries()
        finally:
            local_journal.close()
            fleet_journal.close()
        assert local_entries
        assert canon(fleet_entries) == canon(local_entries)
