"""Graceful drain: finish the in-flight job, hand it over, exit 0.

Drain is the *uncharged* decommission path — the opposite end of the
spectrum from SIGKILL.  These tests pin the lifecycle at the protocol
level (in-process) and the process level (SIGTERM → exit 0, CLI drain
of a registered worker deregisters it from the gateway).
"""

from __future__ import annotations

import subprocess
import sys
import time

from repro.core.memo import code_version_hash
from repro.fleet.wire import PROTOCOL, decode_obj, encode_obj, http_json
from tests.fleet.conftest import REPO_ROOT, FleetHarness, fleet_env


def _envelope(fn, *args, **kwargs):
    return {
        "protocol": PROTOCOL,
        "version": code_version_hash(),
        "init": None,
        "fn": encode_obj(fn),
        "args": encode_obj(args),
        "kwargs": encode_obj(kwargs),
    }


def _nap(seconds):
    time.sleep(seconds)
    return "rested"


def _wait(predicate, timeout: float = 15.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError("%s not reached in %gs" % (message, timeout))


class TestDrainProtocol:
    def test_drain_finishes_inflight_job_then_exits(self, worker_servers):
        (server,) = worker_servers(1, drain_grace_s=10.0)
        url = "http://127.0.0.1:%d" % server.port
        status, doc = http_json("POST", url + "/run", _envelope(_nap, 0.4))
        assert status == 200
        job = doc["job"]

        status, drain_doc = http_json("POST", url + "/drain", {})
        assert status == 200 and drain_doc["draining"] is True

        # New work is refused with the draining marker (uncharged path)…
        status, doc = http_json("POST", url + "/run", _envelope(_nap, 0.1))
        assert status == 503 and doc.get("draining") is True

        # …and /health advertises the drain so probes skip this worker.
        status, health = http_json("GET", url + "/health")
        assert status == 200 and health["draining"] is True

        # The in-flight job still completes and hands over its result.
        record = None
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            status, record = http_json("GET", "%s/result?job=%s" % (url, job))
            if status != 200 or record.get("status") != "pending":
                break
            time.sleep(0.02)
        assert status == 200 and record["status"] == "done"
        assert decode_obj(record["value"]) == "rested"

        # With the result fetched the server shuts itself down.
        def gone():
            try:
                http_json("GET", url + "/health", timeout=1.0)
                return False
            except Exception:
                return True

        _wait(gone, message="worker shutdown after drain")

    def test_drain_is_idempotent(self, worker_servers):
        (server,) = worker_servers(1)
        url = "http://127.0.0.1:%d" % server.port
        for _ in range(3):
            try:
                status, doc = http_json("POST", url + "/drain", {})
            except Exception:
                break  # already exited: also fine
            assert status == 200 and doc["ok"]


class TestDrainProcess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        harness = FleetHarness(tmp_path)
        try:
            harness.start_worker()
            harness.sigterm_worker(0)
            assert harness.wait_worker_exit(0, timeout=30.0) == 0
        finally:
            harness.stop()

    def test_cli_drain_deregisters_from_gateway(self, tmp_path):
        harness = FleetHarness(tmp_path)
        try:
            harness.start_gateway(include_workers=False, lease_s=5.0)
            harness.start_worker(register=True)
            harness.wait_members(1)

            _proc, port = harness.workers[0]
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "fleet", "drain",
                    "--url", "http://127.0.0.1:%d" % port,
                ],
                env=fleet_env(),
                cwd=str(REPO_ROOT),
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            assert "draining" in result.stdout

            assert harness.wait_worker_exit(0, timeout=30.0) == 0
            # Deregistered: the gateway's member table empties without
            # waiting out the lease (5s would not have elapsed yet).
            status = harness.gateway_status()
            assert status["membership"]["members"] == 0
        finally:
            harness.stop()
