"""Unit tests for the color blitter."""

import numpy as np
import pytest

from repro.workloads.chrome.blitter import (
    BlitStats,
    alpha_blend,
    blit_copy,
    fill_rect,
    profile_color_blitting,
)


def canvas(h=32, w=32, value=0):
    c = np.zeros((h, w, 4), dtype=np.uint8)
    c[:] = value
    return c


def sprite(h=8, w=8, color=(255, 0, 0, 255)):
    s = np.zeros((h, w, 4), dtype=np.uint8)
    s[:] = np.array(color, dtype=np.uint8)
    return s


class TestFill:
    def test_fills_rect(self):
        c = canvas()
        stats = fill_rect(c, 4, 4, 8, 8, (1, 2, 3, 4))
        assert (c[4:12, 4:12] == [1, 2, 3, 4]).all()
        assert (c[:4] == 0).all()
        assert stats.pixels_filled == 64

    def test_clips_to_canvas(self):
        c = canvas(16, 16)
        stats = fill_rect(c, 12, 12, 8, 8, (9, 9, 9, 9))
        assert stats.pixels_filled == 16

    def test_fully_off_canvas(self):
        c = canvas(16, 16)
        assert fill_rect(c, 100, 100, 8, 8, (9, 9, 9, 9)).pixels_filled == 0

    def test_bad_color(self):
        with pytest.raises(ValueError):
            fill_rect(canvas(), 0, 0, 4, 4, (1, 2, 3))


class TestCopy:
    def test_copies_pixels(self):
        c = canvas()
        stats = blit_copy(c, sprite(), 8, 8)
        assert (c[8:16, 8:16, 0] == 255).all()
        assert stats.pixels_copied == 64

    def test_negative_position_clips(self):
        c = canvas(16, 16)
        stats = blit_copy(c, sprite(8, 8), -4, -4)
        assert stats.pixels_copied == 16
        assert (c[0:4, 0:4, 0] == 255).all()


class TestAlphaBlend:
    def test_opaque_source_replaces(self):
        c = canvas(value=100)
        alpha_blend(c, sprite(color=(200, 0, 0, 255)), 0, 0)
        assert (c[:8, :8, 0] == 200).all()

    def test_transparent_source_keeps_destination(self):
        c = canvas(value=100)
        alpha_blend(c, sprite(color=(200, 0, 0, 0)), 0, 0)
        assert (c[:8, :8, :3] == 100).all()

    def test_half_alpha_mixes(self):
        c = canvas(value=0)
        c[:, :, 3] = 255
        alpha_blend(c, sprite(color=(255, 255, 255, 128)), 0, 0)
        mixed = c[0, 0, 0]
        assert 125 <= mixed <= 131  # ~= 255 * 128/255

    def test_matches_float_reference(self, rng):
        """The fixed-point blend tracks the exact float src-over within
        one LSB per channel."""
        dst = rng.integers(0, 256, size=(16, 16, 4), dtype=np.uint8)
        src = rng.integers(0, 256, size=(16, 16, 4), dtype=np.uint8)
        expected_rgb = None
        d = dst.astype(np.float64)
        s = src.astype(np.float64)
        a = s[:, :, 3:4] / 255.0
        expected_rgb = s[:, :, :3] * a + d[:, :, :3] * (1 - a)
        out = dst.copy()
        alpha_blend(out, src, 0, 0)
        assert np.abs(out[:, :, :3].astype(np.float64) - expected_rgb).max() <= 1.0

    def test_blend_stats(self):
        c = canvas()
        stats = alpha_blend(c, sprite(), 0, 0)
        assert stats.pixels_blended == 64


class TestStats:
    def test_merged(self):
        a = BlitStats(pixels_filled=1, pixels_copied=2, pixels_blended=3)
        b = BlitStats(pixels_filled=10, pixels_copied=20, pixels_blended=30)
        m = a.merged(b)
        assert (m.pixels_filled, m.pixels_copied, m.pixels_blended) == (11, 22, 33)
        assert m.total_pixels == 66


class TestProfile:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            profile_color_blitting(BlitStats())

    def test_blends_cost_more_ops_than_fills(self):
        fills = profile_color_blitting(BlitStats(pixels_filled=10_000))
        blends = profile_color_blitting(BlitStats(pixels_blended=10_000))
        assert blends.alu_ops / blends.dram_bytes > fills.alu_ops / fills.dram_bytes

    def test_cached_fraction_reduces_traffic(self):
        stats = BlitStats(pixels_blended=100_000)
        hot = profile_color_blitting(stats, cached_fraction=0.8)
        cold = profile_color_blitting(stats, cached_fraction=0.0)
        assert hot.dram_bytes < cold.dram_bytes
        assert hot.instructions == pytest.approx(cold.instructions)

    def test_invalid_cached_fraction(self):
        with pytest.raises(ValueError):
            profile_color_blitting(BlitStats(pixels_filled=10), cached_fraction=1.0)

    def test_memory_intensive(self):
        """The Figure 18 fill/copy/blend mix passes the MPKI > 10 test;
        a pure-blend batch sits just at the threshold."""
        mix = BlitStats(pixels_filled=250_000, pixels_copied=250_000,
                        pixels_blended=500_000)
        assert profile_color_blitting(mix).mpki > 10
        pure = profile_color_blitting(BlitStats(pixels_blended=1_000_000))
        assert pure.mpki > 9
