"""Unit tests for the 60 FPS frame-budget analysis."""

import pytest

from repro.workloads.chrome.frame_budget import (
    FRAME_BUDGET_S,
    frame_time,
    scroll_survey,
)
from repro.workloads.chrome.pages import PAGES


class TestFrameTime:
    @pytest.fixture(scope="class")
    def docs(self):
        return frame_time(PAGES["Google Docs"])

    def test_budget_is_sixty_fps(self):
        assert FRAME_BUDGET_S == pytest.approx(16.7e-3, abs=0.1e-3)

    def test_pim_shortens_the_frame(self, docs):
        assert docs.with_pim_s < docs.cpu_only_s

    def test_pim_raises_fps(self, docs):
        assert docs.pim_fps > docs.cpu_fps

    def test_frame_times_plausible(self, docs):
        """A heavy scroll frame takes single-digit milliseconds of SoC
        work on this class of device."""
        assert 1e-3 <= docs.cpu_only_s <= 30e-3

    def test_overlap_bounded_by_cpu_stream(self, docs):
        assert docs.with_pim_s >= docs.layout_s * 0.999

    def test_components_sum(self, docs):
        assert docs.cpu_only_s == pytest.approx(
            docs.layout_s + docs.blitting_s + docs.tiling_s
        )


class TestSurvey:
    def test_all_pages_surveyed(self):
        survey = scroll_survey(PAGES)
        assert len(survey) == len(PAGES)

    def test_pim_never_hurts_frame_time(self):
        for ft in scroll_survey(PAGES):
            assert ft.with_pim_s <= ft.cpu_only_s * 1.001, ft.page

    def test_pim_meets_budget_wherever_cpu_does(self):
        """Offloading must never turn a smooth page into a janky one."""
        for ft in scroll_survey(PAGES):
            if ft.cpu_meets_budget:
                assert ft.pim_meets_budget, ft.page

    def test_animation_page_is_heaviest(self):
        survey = {ft.page: ft for ft in scroll_survey(PAGES)}
        heaviest = max(survey.values(), key=lambda ft: ft.cpu_only_s)
        assert heaviest.page == "Animation"
