"""Unit + property tests for texture tiling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import CacheHierarchy
from repro.sim.trace import TraceRecorder
from repro.workloads.chrome.texture import (
    TILE_BYTES,
    TILE_H,
    TILE_W,
    linear_to_tiled,
    linear_to_tiled_traced,
    profile_texture_tiling,
    tiled_to_linear,
)


def bitmap(h, w, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(h, w, 4), dtype=np.uint8)


class TestTiling:
    def test_tile_is_4kb(self):
        assert TILE_BYTES == 4096

    def test_roundtrip_exact(self):
        b = bitmap(128, 256)
        assert np.array_equal(tiled_to_linear(linear_to_tiled(b)), b)

    def test_roundtrip_non_multiple_size(self):
        b = bitmap(100, 70)
        assert np.array_equal(tiled_to_linear(linear_to_tiled(b)), b)

    def test_tile_grid_shape(self):
        t = linear_to_tiled(bitmap(64, 96))
        assert t.tile_rows == 64 // TILE_H
        assert t.tile_cols == 96 // TILE_W
        assert t.num_tiles == 6

    def test_tile_content_matches_source_region(self):
        b = bitmap(64, 64)
        t = linear_to_tiled(b)
        assert np.array_equal(t.tiles[1, 1], b[TILE_H:2 * TILE_H, TILE_W:2 * TILE_W])

    def test_padding_is_zero(self):
        b = bitmap(40, 40)
        t = linear_to_tiled(b)
        assert t.tile_rows == 2
        assert (t.tiles[1, 1][40 - TILE_H:, :, :] == 0).all()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            linear_to_tiled(np.zeros((10, 10, 3), dtype=np.uint8))

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            linear_to_tiled(np.zeros((10, 10, 4), dtype=np.float32))

    @settings(max_examples=20)
    @given(
        h=st.integers(min_value=1, max_value=96),
        w=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_roundtrip_property(self, h, w, seed):
        b = bitmap(h, w, seed)
        assert np.array_equal(tiled_to_linear(linear_to_tiled(b)), b)


class TestTracedTiling:
    def test_trace_covers_all_bytes(self):
        b = bitmap(64, 64)
        rec = TraceRecorder(granularity=TILE_W * 4)
        linear_to_tiled_traced(b, rec)
        trace = rec.trace()
        bytes_touched = len(trace) * TILE_W * 4
        assert bytes_touched == 2 * b.nbytes  # read once + written once

    def test_traced_result_matches_untraced(self):
        b = bitmap(64, 96)
        rec = TraceRecorder()
        traced = linear_to_tiled_traced(b, rec)
        assert np.array_equal(traced.tiles, linear_to_tiled(b).tiles)

    def test_trace_validates_streaming_assumption(self):
        """Replaying the real tiling trace through the cache simulator
        confirms the analytic profile's locality class: every source line
        is read once and every destination line written back once (the
        working set is 2x the LLC, so nothing is reused).  The simulator
        additionally charges a read-for-ownership per destination line
        (write-allocate), which the analytic profile omits because the
        real kernel uses streaming stores."""
        b = bitmap(1024, 1024)  # 4 MB, 2x the LLC
        rec = TraceRecorder(granularity=64)
        linear_to_tiled_traced(b, rec)
        stats = CacheHierarchy().replay(rec.trace())
        lines = b.nbytes // 64
        assert stats.dram_line_writes == lines  # dst written back once
        assert stats.dram_line_reads == 2 * lines  # src + dst RFO
        profile = profile_texture_tiling(1024, 1024)
        assert profile.dram_bytes == pytest.approx((lines * 2) * 64, rel=0.01)


class TestProfile:
    def test_traffic_is_twice_the_bitmap(self):
        p = profile_texture_tiling(512, 512)
        assert p.dram_bytes == 2 * 512 * 512 * 4

    def test_memory_intensive(self):
        assert profile_texture_tiling(512, 512).mpki > 10

    def test_scales_quadratically(self):
        small = profile_texture_tiling(256, 256)
        large = profile_texture_tiling(512, 512)
        assert large.dram_bytes == pytest.approx(4 * small.dram_bytes)
