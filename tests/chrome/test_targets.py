"""Unit tests for the Chrome PIM targets (Figure 18 inputs)."""

import pytest

from repro.core.runner import ExperimentRunner
from repro.workloads.chrome.targets import (
    browser_pim_targets,
    color_blitting_target,
    compression_target,
    texture_tiling_target,
)


class TestTargets:
    def test_four_targets_in_figure_order(self):
        names = [t.name for t in browser_pim_targets()]
        assert names == [
            "texture_tiling", "color_blitting", "compression", "decompression",
        ]

    def test_tiling_uses_512_square_default(self):
        t = texture_tiling_target()
        assert t.profile.dram_bytes == 2 * 512 * 512 * 4

    def test_blitting_covers_size_sweep(self):
        t = color_blitting_target()
        # 32^2 + 64^2 + ... + 1024^2 pixels, each touched ~>1x.
        total_pixels = sum((2**k) ** 2 for k in range(5, 11))
        assert t.profile.working_set_bytes > total_pixels * 4

    def test_compression_invocations_are_pages(self):
        t = compression_target(megabytes=4)
        assert t.invocations == 4 * 1024 * 1024 // 4096

    def test_all_memory_intensive(self):
        for t in browser_pim_targets():
            assert t.profile.mpki > 10, t.name


class TestFigure18Calibration:
    @pytest.fixture(scope="class")
    def result(self):
        return ExperimentRunner().evaluate(browser_pim_targets())

    def test_mean_energy_reductions(self, result):
        assert result.mean_pim_core_energy_reduction == pytest.approx(0.513, abs=0.08)
        assert result.mean_pim_acc_energy_reduction == pytest.approx(0.610, abs=0.10)

    def test_mean_speedups(self, result):
        assert result.mean_pim_core_speedup == pytest.approx(1.6, abs=0.45)
        assert result.mean_pim_acc_speedup == pytest.approx(2.0, abs=0.5)

    def test_no_kernel_slows_down_on_pim(self, result):
        """Criterion 5 of Section 3.2 holds for every accepted target."""
        for c in result.comparisons:
            assert c.pim_core_speedup >= 0.99, c.target.name
            assert c.pim_acc_speedup >= 1.0, c.target.name

    def test_acc_beats_core_on_compression(self, result):
        """Compression is the compute-heaviest browser kernel, so PIM-Acc's
        advantage over PIM-Core is largest there (Section 10.1)."""
        comp = result.by_name("compression")
        tile = result.by_name("texture_tiling")
        comp_gap = comp.pim_acc_speedup / comp.pim_core_speedup
        tile_gap = tile.pim_acc_speedup / tile.pim_core_speedup
        assert comp_gap > 1.2

    def test_movement_dominates_reductions(self, result):
        """Most of the PIM energy win comes from eliminated data movement
        (Section 10.1: 77.7% for texture tiling)."""
        c = result.by_name("texture_tiling")
        saved = c.cpu.energy_j - c.pim_acc.energy_j
        movement_saved = c.cpu.energy.data_movement - c.pim_acc.energy.data_movement
        assert movement_saved / saved > 0.6
