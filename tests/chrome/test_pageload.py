"""Unit tests for the page-load interaction model."""

import pytest

from repro.core.workload import characterize
from repro.workloads.chrome.pageload import evaluate_page_load, load_functions
from repro.workloads.chrome.pages import PAGES


class TestLoadFunctions:
    def test_three_phases(self):
        names = [f.name for f in load_functions(PAGES["Google Docs"])]
        assert names == ["parse_style_layout", "color_blitting", "texture_tiling"]

    def test_loading_is_kernel_heavy(self):
        """The initial-paint burst makes tiling+blitting a large share of
        load energy (the paper's motivation for keeping CPU raster +
        PIM tiling over GPU raster)."""
        ch = characterize("load", load_functions(PAGES["Google Docs"]))
        kernels = ch.energy_share("texture_tiling") + ch.energy_share("color_blitting")
        assert kernels > 0.35

    def test_blend_mix_follows_page(self):
        docs = load_functions(PAGES["Google Docs"])
        anim = load_functions(PAGES["Animation"])
        docs_blit = next(f for f in docs if f.name == "color_blitting").profile
        anim_blit = next(f for f in anim if f.name == "color_blitting").profile
        assert anim_blit.dram_bytes > docs_blit.dram_bytes  # higher overdraw


class TestEvaluatePageLoad:
    @pytest.fixture(scope="class")
    def result(self):
        return evaluate_page_load(PAGES["Google Docs"])

    def test_pim_reduces_load_time(self, result):
        assert 0.0 < result.load_time_reduction < 0.8

    def test_pim_reduces_load_energy(self, result):
        assert result.pim_energy_j < result.cpu_energy_j

    def test_overlap_caps_at_parse_stream(self, result):
        """With full overlap, load time cannot drop below the CPU-side
        parse/layout stream."""
        functions = load_functions(PAGES["Google Docs"])
        from repro.core.offload import OffloadEngine

        parse = next(f for f in functions if f.accelerator_key is None)
        parse_time = OffloadEngine().cpu_model.run(parse.profile).time_s
        assert result.pim_time_s >= parse_time * 0.999

    def test_all_pages_benefit(self):
        for page in PAGES.values():
            result = evaluate_page_load(page)
            assert result.load_time_reduction > 0.0, page.name

    def test_load_time_plausible(self, result):
        """Initial render of a heavy page: hundreds of ms on a
        Chromebook-class device."""
        assert 0.05 <= result.cpu_time_s <= 2.0
