"""Unit tests for the transparent file-system compression extension."""

import pytest

from repro.workloads.chrome.fscompress import (
    FlashModel,
    FsCompressionModel,
    FsConfig,
)

MB = 1024.0 * 1024.0


@pytest.fixture(scope="module")
def model():
    return FsCompressionModel()


class TestValidation:
    def test_ratio_below_one_rejected(self):
        with pytest.raises(ValueError):
            FsCompressionModel(ratio=0.8)

    def test_negative_io_rejected(self, model):
        with pytest.raises(ValueError):
            model.evaluate(-1, 0, FsConfig.NONE)


class TestTrafficSavings:
    def test_compression_cuts_flash_traffic(self, model):
        none = model.evaluate(100 * MB, 20 * MB, FsConfig.NONE)
        pim = model.evaluate(100 * MB, 20 * MB, FsConfig.PIM)
        assert pim.flash_bytes == pytest.approx(none.flash_bytes / model.ratio)


class TestEnergyOrdering:
    def test_pim_compression_beats_no_compression(self, model):
        """The extension's claim: with in-memory (de)compression, the
        flash-energy savings are no longer eaten by CPU codec energy."""
        none = model.evaluate(200 * MB, 50 * MB, FsConfig.NONE)
        pim = model.evaluate(200 * MB, 50 * MB, FsConfig.PIM)
        assert pim.energy_j < none.energy_j

    def test_pim_beats_cpu_compression(self, model):
        cpu = model.evaluate(200 * MB, 50 * MB, FsConfig.CPU)
        pim = model.evaluate(200 * MB, 50 * MB, FsConfig.PIM)
        assert pim.energy_j < cpu.energy_j
        assert pim.latency_s < cpu.latency_s

    def test_compare_returns_all_three(self, model):
        results = model.compare(10 * MB, 10 * MB)
        assert [r.config for r in results] == list(FsConfig)


class TestLatency:
    def test_pim_latency_competitive_with_uncompressed(self, model):
        """PIM decompression (249 GB/s-class internal path) must not blow
        up read latency relative to raw flash reads -- the paper's 'zero
        latency overhead' motivation [156]."""
        none = model.evaluate(100 * MB, 0, FsConfig.NONE)
        pim = model.evaluate(100 * MB, 0, FsConfig.PIM)
        assert pim.latency_s < none.latency_s * 1.5

    def test_slow_flash_amplifies_compression_benefit(self):
        slow = FsCompressionModel(flash=FlashModel(read_bandwidth=50 * MB,
                                                   write_bandwidth=20 * MB))
        fast = FsCompressionModel()
        io = (100 * MB, 20 * MB)
        slow_gain = (
            slow.evaluate(*io, FsConfig.NONE).latency_s
            - slow.evaluate(*io, FsConfig.PIM).latency_s
        )
        fast_gain = (
            fast.evaluate(*io, FsConfig.NONE).latency_s
            - fast.evaluate(*io, FsConfig.PIM).latency_s
        )
        assert slow_gain > fast_gain


class TestZeroIo:
    def test_all_zero(self, model):
        r = model.evaluate(0, 0, FsConfig.PIM)
        assert r.energy_j == 0.0 and r.latency_s == 0.0
