"""Unit + calibration tests for the web-page scrolling models."""

import pytest

from repro.core.workload import characterize
from repro.workloads.chrome.pages import PAGES, PAGE_ORDER


class TestPageSet:
    def test_six_pages_in_paper_order(self):
        assert len(PAGE_ORDER) == 6
        assert PAGE_ORDER[0] == "Google Docs"
        assert set(PAGE_ORDER) == set(PAGES)

    def test_three_functions_per_page(self):
        for page in PAGES.values():
            names = [f.name for f in page.scrolling_functions()]
            assert names == ["texture_tiling", "color_blitting", "other"]

    def test_tiling_traffic_tracks_raster_area(self):
        docs = PAGES["Google Docs"]
        assert docs.tiling_profile().dram_bytes == pytest.approx(
            2 * docs.raster_pixels * 4, rel=0.01
        )

    def test_blit_stats_respect_blend_fraction(self):
        page = PAGES["Animation"]
        stats = page.blit_stats()
        blended_fraction = stats.pixels_blended / stats.total_pixels
        assert blended_fraction == pytest.approx(page.blend_fraction, abs=0.02)


class TestFigure1Calibration:
    """Regression bands for the Figure 1 / Figure 2 anchors."""

    def test_average_kernel_share(self):
        shares = []
        for name in PAGE_ORDER:
            ch = characterize(name, PAGES[name].scrolling_functions())
            s = ch.energy_shares()
            shares.append(s["texture_tiling"] + s["color_blitting"])
        avg = sum(shares) / len(shares)
        assert avg == pytest.approx(0.419, abs=0.08)

    def test_docs_breakdown(self):
        ch = characterize("docs", PAGES["Google Docs"].scrolling_functions())
        assert ch.data_movement_fraction == pytest.approx(0.77, abs=0.08)
        assert ch.movement_share_of_workload("texture_tiling") == pytest.approx(
            0.257, abs=0.05
        )
        assert ch.movement_fraction_of_function("texture_tiling") == pytest.approx(
            0.815, abs=0.08
        )
        assert ch.movement_fraction_of_function("color_blitting") == pytest.approx(
            0.639, abs=0.08
        )

    def test_all_pages_are_movement_dominated(self):
        for name in PAGE_ORDER:
            ch = characterize(name, PAGES[name].scrolling_functions())
            assert ch.data_movement_fraction > 0.5, name

    def test_animation_page_is_blit_heavy(self):
        ch = characterize("anim", PAGES["Animation"].scrolling_functions())
        s = ch.energy_shares()
        assert s["color_blitting"] > s["texture_tiling"]

    def test_script_heavy_pages_have_bigger_other(self):
        twitter = characterize(
            "tw", PAGES["Twitter"].scrolling_functions()
        ).energy_share("other")
        docs = characterize(
            "docs", PAGES["Google Docs"].scrolling_functions()
        ).energy_share("other")
        assert twitter > docs
