"""Unit tests for the display-list rasterizer."""

import numpy as np
import pytest

from repro.workloads.chrome.blitter import profile_color_blitting
from repro.workloads.chrome.rasterizer import (
    DisplayList,
    GLYPH_H,
    GLYPH_W,
    rasterize,
    synthetic_page_paint,
)


class TestDisplayList:
    def test_builder_chains(self):
        dl = DisplayList(100, 100).fill(0, 0, 10, 10).text(0, 20, 5)
        assert len(dl.commands) == 2

    def test_unknown_command_rejected(self):
        dl = DisplayList(64, 64)
        dl.commands.append("draw_owl")
        with pytest.raises(TypeError):
            rasterize(dl)


class TestRasterize:
    def test_fill_paints_pixels(self):
        dl = DisplayList(64, 64).fill(8, 8, 16, 16, (255, 0, 0, 255))
        bitmap, stats = rasterize(dl)
        assert (bitmap[8:24, 8:24, 0] == 255).all()
        assert stats.pixels_filled >= 16 * 16

    def test_image_blits(self):
        img = np.full((8, 8, 4), 7, dtype=np.uint8)
        dl = DisplayList(64, 64).image(4, 4, img)
        bitmap, stats = rasterize(dl)
        assert (bitmap[4:12, 4:12] == 7).all()
        assert stats.pixels_copied == 64

    def test_text_blends_glyphs(self):
        dl = DisplayList(200, 64).text(0, 10, 10)
        bitmap, stats = rasterize(dl)
        assert stats.pixels_blended == 10 * GLYPH_W * GLYPH_H
        # Glyph cores are dark on the light-initialized rows they cover.
        assert bitmap[16, 3, 0] < 100

    def test_painters_order(self):
        """Later commands draw over earlier ones."""
        dl = (
            DisplayList(32, 32)
            .fill(0, 0, 32, 32, (10, 10, 10, 255))
            .fill(0, 0, 32, 32, (200, 200, 200, 255))
        )
        bitmap, _ = rasterize(dl)
        assert (bitmap[:, :, 0] == 200).all()

    def test_deterministic(self):
        dl = synthetic_page_paint(256, 192, seed=5)
        a, _ = rasterize(dl, seed=1)
        b, _ = rasterize(synthetic_page_paint(256, 192, seed=5), seed=1)
        assert np.array_equal(a, b)


class TestSyntheticPagePaint:
    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            synthetic_page_paint(text_fraction=0.8, image_fraction=0.5)
        with pytest.raises(ValueError):
            synthetic_page_paint(text_fraction=-0.1)

    def test_text_heavy_page_blends_more(self):
        texty = synthetic_page_paint(512, 384, text_fraction=0.7,
                                     image_fraction=0.05, seed=2)
        imagey = synthetic_page_paint(512, 384, text_fraction=0.05,
                                      image_fraction=0.6, seed=2)
        _, t_stats = rasterize(texty)
        _, i_stats = rasterize(imagey)
        assert t_stats.pixels_blended > i_stats.pixels_blended
        assert i_stats.pixels_copied > t_stats.pixels_copied

    def test_stats_feed_the_profile(self):
        """End-to-end: real rasterization -> blit stats -> kernel profile
        (what the page models approximate analytically)."""
        _, stats = rasterize(synthetic_page_paint(512, 384, seed=1))
        profile = profile_color_blitting(stats)
        assert profile.dram_bytes > 0
        assert profile.mpki > 5

    def test_blend_share_tracks_text_fraction(self):
        """The page models parameterize blit mixes by blend_fraction;
        the functional path must reproduce that monotonic relationship."""
        shares = []
        for tf in (0.1, 0.4, 0.7):
            _, stats = rasterize(
                synthetic_page_paint(512, 384, text_fraction=tf,
                                     image_fraction=0.1, seed=3)
            )
            shares.append(stats.pixels_blended / max(stats.total_pixels, 1))
        assert shares[0] < shares[1] < shares[2]
