"""Unit + property tests for the LZO-class compressor."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.chrome.lzo import compress, decompress, roundtrip
from repro.workloads.chrome.synthetic import generate_web_memory


class TestRoundtrip:
    def test_empty(self):
        compressed, stats = compress(b"")
        assert decompress(compressed)[0] == b""
        assert stats.input_bytes == 0

    def test_short_literal_only(self):
        data = b"abc"
        compressed, stats = compress(data)
        assert decompress(compressed)[0] == data
        assert stats.matches == 0

    def test_repetitive_data_compresses(self):
        data = b"abcd" * 4096
        compressed, cstats, _ = roundtrip(data)
        assert len(compressed) < len(data) / 4
        assert cstats.matches > 0

    def test_incompressible_data_roundtrips(self, rng):
        data = rng.integers(0, 256, size=8192, dtype="uint8").tobytes()
        compressed, cstats, _ = roundtrip(data)
        # Random data grows slightly (literal-run headers) but roundtrips.
        assert len(compressed) <= len(data) * 1.02

    def test_overlapping_match(self):
        """LZ77's trademark: a match may overlap its own output (RLE)."""
        data = b"x" * 1000
        compressed, cstats, dstats = roundtrip(data)
        assert cstats.matches >= 1
        assert dstats.output_bytes == 1000

    def test_long_match_lengths(self):
        data = b"0123456789abcdef" * 2000  # forces extended length coding
        roundtrip(data)

    def test_web_memory_ratio(self):
        """Browser-like memory must land near the ~2.5-3x LZO ratio the
        ZRAM model assumes."""
        data = generate_web_memory(256 * 1024, seed=3)
        _, cstats, _ = roundtrip(data)
        assert 2.0 <= cstats.ratio <= 4.5

    @settings(max_examples=30)
    @given(data=st.binary(min_size=0, max_size=4096))
    def test_arbitrary_bytes_roundtrip(self, data):
        compressed, _ = compress(data)
        restored, _ = decompress(compressed)
        assert restored == data

    @settings(max_examples=15)
    @given(
        chunk=st.binary(min_size=1, max_size=64),
        repeats=st.integers(min_value=2, max_value=200),
    )
    def test_periodic_data_roundtrip(self, chunk, repeats):
        data = chunk * repeats
        restored, _ = decompress(compress(data)[0])
        assert restored == data


class TestStats:
    def test_literals_plus_matches_cover_input(self):
        data = generate_web_memory(64 * 1024, seed=1)
        _, cstats = compress(data)
        assert cstats.literal_bytes + cstats.match_bytes == len(data)

    def test_decompress_stats_mirror(self):
        data = b"hello world " * 500
        compressed, cstats = compress(data)
        _, dstats = decompress(compressed)
        assert dstats.matches == cstats.matches
        assert dstats.match_bytes == cstats.match_bytes
        assert dstats.output_bytes == len(data)

    def test_ratio_zero_output(self):
        _, stats = compress(b"")
        assert stats.ratio == 0.0


class TestCorruptInput:
    def test_truncated_literal_run(self):
        with pytest.raises(ValueError):
            decompress(bytes([10]))  # promises 11 literals, provides none

    def test_invalid_distance(self):
        # Match token with distance 100 at stream start.
        with pytest.raises(ValueError):
            decompress(bytes([0x80, 100, 0]))

    def test_zero_distance(self):
        with pytest.raises(ValueError):
            decompress(bytes([0x00, 65, 0x80, 0, 0]))

    def test_truncated_distance(self):
        with pytest.raises(ValueError):
            decompress(bytes([0x00, 65, 0x80, 1]))
