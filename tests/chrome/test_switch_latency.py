"""Unit tests for the tab-switch latency analysis."""

import pytest

from repro.workloads.chrome.zram import switch_latency

MB = 1024 * 1024


class TestSwitchLatency:
    @pytest.fixture(scope="class")
    def latency(self):
        return switch_latency()

    def test_pim_reduces_switch_latency(self, latency):
        assert latency.pim_acc_s < latency.cpu_only_s
        assert latency.pim_core_s <= latency.cpu_only_s * 1.01

    def test_acc_at_least_as_fast_as_core(self, latency):
        assert latency.pim_acc_s <= latency.pim_core_s

    def test_speedup_band(self, latency):
        """Decompression's PIM-Acc speedup (Figure 18) carries over to
        the user-facing latency: expect ~1.3-2.5x."""
        assert 1.2 <= latency.pim_acc_speedup <= 3.0

    def test_latency_scales_with_tab_size(self):
        small = switch_latency(tab_bytes=50 * MB)
        large = switch_latency(tab_bytes=200 * MB)
        assert large.cpu_only_s > small.cpu_only_s
        assert large.cpu_only_s == pytest.approx(4 * small.cpu_only_s, rel=0.2)

    def test_absolute_latency_plausible(self, latency):
        """Re-activating a ~150 MB tab should take tens to hundreds of
        milliseconds, matching user-perceived switch times."""
        assert 5e-3 <= latency.cpu_only_s <= 1.0
