"""Unit tests for the ZRAM tab-switching model."""

import pytest

from repro.core.workload import characterize
from repro.workloads.chrome.zram import (
    TabSwitchingSession,
    ZramConfig,
    profile_compression,
    profile_decompression,
)

GB = 1024.0**3
MB = 1024.0**2


@pytest.fixture(scope="module")
def session():
    s = TabSwitchingSession()
    s.run()
    return s


class TestSimulation:
    def test_swap_out_exceeds_swap_in(self, session):
        """Phase-1 evictions never swap back in full, so out > in (the
        paper: 11.7 GB out vs 7.8 GB in)."""
        t = session.timeline()
        assert t.total_out > t.total_in > 0

    def test_volumes_in_paper_range(self, session):
        t = session.timeline()
        assert 8 * GB <= t.total_out <= 16 * GB
        assert 5 * GB <= t.total_in <= 10 * GB

    def test_peak_rates_order_of_hundreds_mbps(self, session):
        t = session.timeline()
        assert 80 * MB <= t.peak_out_rate <= 500 * MB
        assert 80 * MB <= t.peak_in_rate <= 500 * MB

    def test_duration_covers_open_and_switch_phases(self, session):
        cfg = session.config
        expected = cfg.num_tabs * (cfg.seconds_per_open + cfg.seconds_per_switch)
        assert session.timeline().duration_s >= expected

    def test_run_is_idempotent(self, session):
        first = session.timeline().total_out
        session.run()
        assert session.timeline().total_out == first

    def test_memory_budget_respected(self, session):
        assert session._memory_in_use() <= session.config.memory_budget_bytes * 1.001

    def test_deterministic_given_seed(self):
        a = TabSwitchingSession(ZramConfig(seed=42)).run()
        b = TabSwitchingSession(ZramConfig(seed=42)).run()
        assert a.total_out == b.total_out

    def test_smaller_budget_swaps_more(self):
        big = TabSwitchingSession(ZramConfig(memory_budget_bytes=1.9 * GB)).run()
        small = TabSwitchingSession(ZramConfig(memory_budget_bytes=1.0 * GB)).run()
        assert small.total_out > big.total_out


class TestProfiles:
    def test_compression_traffic(self):
        p = profile_compression(100 * MB, ratio=2.5)
        assert p.dram_bytes == pytest.approx(100 * MB + 40 * MB)

    def test_decompression_traffic(self):
        p = profile_decompression(100 * MB, ratio=2.5)
        assert p.dram_bytes == pytest.approx(100 * MB + 40 * MB)

    def test_profiles_memory_intensive(self):
        assert profile_compression(64 * MB).mpki > 10
        assert profile_decompression(64 * MB).mpki > 10

    def test_session_profiles_match_timeline(self, session):
        t = session.timeline()
        comp = session.compression_profile()
        ratio = session.config.compression_ratio
        assert comp.dram_bytes == pytest.approx(t.total_out * (1 + 1 / ratio), rel=0.01)


class TestWorkloadDecomposition:
    def test_four_functions(self, session):
        names = [f.name for f in session.workload_functions()]
        assert names == [
            "compression", "decompression", "tab_rendering", "script_and_layout",
        ]

    def test_paper_energy_and_time_shares(self, session):
        """The paper: compression+decompression = 18.1% of energy and
        14.2% of execution time during tab switching."""
        ch = characterize("tabs", session.workload_functions())
        e = ch.energy_share("compression") + ch.energy_share("decompression")
        t = ch.time_share("compression") + ch.time_share("decompression")
        assert e == pytest.approx(0.181, abs=0.06)
        assert t == pytest.approx(0.142, abs=0.05)
