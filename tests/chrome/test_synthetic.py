"""Unit tests for the synthetic web-memory generator."""

import pytest

from repro.workloads.chrome.synthetic import generate_web_memory


class TestGenerator:
    def test_exact_size(self):
        assert len(generate_web_memory(10_000, seed=0)) == 10_000

    def test_zero_size(self):
        assert generate_web_memory(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_web_memory(-1)

    def test_deterministic(self):
        assert generate_web_memory(8192, seed=5) == generate_web_memory(8192, seed=5)

    def test_seeds_differ(self):
        assert generate_web_memory(8192, seed=1) != generate_web_memory(8192, seed=2)

    def test_contains_zero_pages(self):
        data = generate_web_memory(256 * 1024, seed=0)
        assert b"\x00" * 4096 in data

    def test_mixed_entropy(self):
        """The mix must contain both compressible and near-random pages."""
        import collections

        data = generate_web_memory(128 * 1024, seed=0)
        pages = [data[i : i + 4096] for i in range(0, len(data), 4096)]
        entropies = []
        for page in pages:
            counts = collections.Counter(page)
            distinct = len(counts)
            entropies.append(distinct)
        assert min(entropies) < 10  # zero-ish page
        assert max(entropies) > 200  # random page
