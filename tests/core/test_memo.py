"""Unit tests for the content-keyed memo cache."""

from repro.core.memo import MemoCache, code_version_hash


class TestMemoCache:
    def test_miss_returns_default(self, tmp_path):
        cache = MemoCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.get("nope", default=42) == 42

    def test_roundtrip(self, tmp_path):
        cache = MemoCache(tmp_path)
        value = {"rows": [{"a": 1, "b": 0.5}], "anchors": {"x": [1.0, 1.1]}}
        cache.put("fig", value)
        assert cache.get("fig") == value

    def test_config_partitions_entries(self, tmp_path):
        cache = MemoCache(tmp_path)
        cache.put("fig", 1, config={"qstep": 8})
        cache.put("fig", 2, config={"qstep": 16})
        assert cache.get("fig", config={"qstep": 8}) == 1
        assert cache.get("fig", config={"qstep": 16}) == 2
        assert cache.get("fig") is None

    def test_version_change_invalidates(self, tmp_path):
        old = MemoCache(tmp_path, version="v1")
        old.put("fig", "stale")
        new = MemoCache(tmp_path, version="v2")
        assert new.get("fig") is None
        assert old.get("fig") == "stale"

    def test_default_version_is_code_hash(self, tmp_path):
        assert MemoCache(tmp_path).version == code_version_hash()
        assert len(code_version_hash()) == 16

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = MemoCache(tmp_path)
        path = cache.put("fig", {"ok": True})
        path.write_text("{not json")
        assert cache.get("fig") is None

    def test_clear(self, tmp_path):
        cache = MemoCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.get("a") is None

    def test_numpy_scalars_serialize(self, tmp_path):
        import numpy as np

        cache = MemoCache(tmp_path)
        cache.put("np", {"x": np.float64(1.5), "n": np.int64(3)})
        assert cache.get("np") == {"x": 1.5, "n": 3}
