"""Unit tests for the content-keyed memo cache."""

import json
import os
import time

from repro.core.memo import MemoCache, code_version_hash
from repro.core.store import peek_key


class TestMemoCache:
    def test_miss_returns_default(self, tmp_path):
        cache = MemoCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.get("nope", default=42) == 42

    def test_roundtrip(self, tmp_path):
        cache = MemoCache(tmp_path)
        value = {"rows": [{"a": 1, "b": 0.5}], "anchors": {"x": [1.0, 1.1]}}
        cache.put("fig", value)
        assert cache.get("fig") == value

    def test_config_partitions_entries(self, tmp_path):
        cache = MemoCache(tmp_path)
        cache.put("fig", 1, config={"qstep": 8})
        cache.put("fig", 2, config={"qstep": 16})
        assert cache.get("fig", config={"qstep": 8}) == 1
        assert cache.get("fig", config={"qstep": 16}) == 2
        assert cache.get("fig") is None

    def test_version_change_invalidates(self, tmp_path):
        old = MemoCache(tmp_path, version="v1")
        old.put("fig", "stale")
        new = MemoCache(tmp_path, version="v2")
        assert new.get("fig") is None
        assert old.get("fig") == "stale"

    def test_default_version_is_code_hash(self, tmp_path):
        assert MemoCache(tmp_path).version == code_version_hash()
        assert len(code_version_hash()) == 16

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = MemoCache(tmp_path)
        path = cache.put("fig", {"ok": True})
        path.write_text("{not json")
        assert cache.get("fig") is None

    def test_clear(self, tmp_path):
        cache = MemoCache(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.get("a") is None

    def test_numpy_scalars_serialize(self, tmp_path):
        import numpy as np

        cache = MemoCache(tmp_path)
        cache.put("np", {"x": np.float64(1.5), "n": np.int64(3)})
        assert cache.get("np") == {"x": 1.5, "n": 3}

    def test_batched_puts_flush_on_close(self, tmp_path):
        cache = MemoCache(tmp_path, version="v1", flush_every=8)
        for i in range(5):
            cache.put("fig%d" % i, {"i": i})
        assert cache.get("fig3") == {"i": 3}  # read-your-writes pre-flush
        # Nothing is committed to disk until the batch flushes.
        assert MemoCache(tmp_path, version="v1").get("fig3") is None
        cache.close()
        assert len(list(tmp_path.glob("memo-*.seg"))) == 1
        assert MemoCache(tmp_path, version="v1").get("fig3") == {"i": 3}


def write_legacy_entry(cache, name, value, config=None):
    """A pre-segment one-file-per-entry document, as the old put() wrote."""
    path = cache._path(name, config)
    value_json = json.dumps(value, sort_keys=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "name": name,
        "version": cache.version,
        "value": value,
        "checksum": MemoCache._checksum(value_json),
    }))
    return path


class TestMixedLayoutMaintenance:
    """clear()/prune()/compact() over a directory holding every layout at
    once: legacy documents, segment blobs, and crash debris."""

    def _mixed_dir(self, tmp_path):
        cache = MemoCache(tmp_path, version="v1")
        legacy = write_legacy_entry(cache, "old-fig", {"legacy": True})
        cache.put("seg-fig", {"segment": 1})
        cache.put("seg-fig2", {"segment": 2})
        cache.close()
        other = MemoCache(tmp_path, version="v1")
        other.put("seg-fig3", {"segment": 3})
        other.close()
        foreign = MemoCache(tmp_path, version="v0")
        foreign_legacy = write_legacy_entry(foreign, "bygone", {"x": 0})
        foreign.put("bygone-seg", {"x": 0})
        foreign_blob = foreign._store.segment_path()
        foreign.close()
        debris = [tmp_path / "dead.tmp.12345", tmp_path / "old.corrupt"]
        for path in debris:
            path.write_text("{")
        return cache, legacy, foreign_legacy, foreign_blob, debris

    def test_legacy_document_is_read_transparently(self, tmp_path):
        cache = MemoCache(tmp_path, version="v1")
        write_legacy_entry(cache, "old-fig", {"legacy": True}, config={"q": 8})
        assert cache.get("old-fig", config={"q": 8}) == {"legacy": True}

    def test_compact_folds_all_three_layouts_with_counts(self, tmp_path):
        cache, legacy, foreign_legacy, foreign_blob, debris = self._mixed_dir(
            tmp_path
        )
        stats = cache.compact()
        assert stats.entries == 4  # 3 segment entries + 1 folded legacy
        assert stats.legacy_folded == 1
        assert stats.segments_merged == 2
        assert stats.quarantined == 0
        assert not legacy.exists()  # folded into the fresh segment
        # Everything live survives under the one remaining v1 blob.
        blobs = [
            p for p in tmp_path.glob("memo-*.seg") if peek_key(p) == "v1"
        ]
        assert len(blobs) == 1
        fresh = MemoCache(tmp_path, version="v1")
        assert fresh.get("old-fig") == {"legacy": True}
        for i, name in enumerate(("seg-fig", "seg-fig2", "seg-fig3")):
            assert fresh.get(name) == {"segment": i + 1}
        # Foreign-version files and debris are untouched without an age.
        assert foreign_legacy.exists()
        assert foreign_blob.exists()
        assert all(path.exists() for path in debris)

    def test_compact_with_age_also_prunes_foreign_and_debris(self, tmp_path):
        cache, legacy, foreign_legacy, foreign_blob, debris = self._mixed_dir(
            tmp_path
        )
        ancient = time.time() - 90 * 86400
        for path in [foreign_legacy, foreign_blob] + debris:
            os.utime(path, (ancient, ancient))
        stats = cache.compact(max_age_days=30)
        assert stats.entries == 4
        assert stats.pruned == 4  # foreign doc + foreign blob + 2 debris
        assert not foreign_legacy.exists()
        assert not foreign_blob.exists()
        assert not any(path.exists() for path in debris)
        assert MemoCache(tmp_path, version="v1").get("old-fig") == {
            "legacy": True
        }

    def test_compact_quarantines_corrupt_legacy_documents(self, tmp_path):
        cache = MemoCache(tmp_path, version="v1")
        bad = write_legacy_entry(cache, "bad", {"x": 1})
        raw = json.loads(bad.read_text())
        raw["value"] = {"x": 2}  # checksum now lies
        bad.write_text(json.dumps(raw))
        cache.put("good", {"ok": True})
        stats = cache.compact()
        assert stats.entries == 1  # only the good entry survives
        assert stats.legacy_folded == 0
        assert not bad.exists()
        assert bad.with_suffix(".corrupt").exists()
        assert MemoCache(tmp_path, version="v1").get("bad") is None

    def test_clear_counts_entries_and_debris_across_layouts(self, tmp_path):
        cache, _, _, _, _ = self._mixed_dir(tmp_path)
        # 1 legacy doc + 3 v1 segment entries + 1 foreign legacy doc
        # + 1 foreign blob (opaque: counts as one file) + 2 debris files.
        assert cache.clear() == 8
        assert list(tmp_path.iterdir()) == []
        assert cache.get("seg-fig") is None

    def test_prune_spares_current_layouts_whatever_their_age(self, tmp_path):
        cache, legacy, foreign_legacy, foreign_blob, debris = self._mixed_dir(
            tmp_path
        )
        ancient = time.time() - 90 * 86400
        for path in tmp_path.iterdir():
            os.utime(path, (ancient, ancient))
        removed = cache.prune(max_age_days=30)
        assert removed == 4  # foreign doc + foreign blob + 2 debris
        assert legacy.exists()
        assert cache.get("seg-fig") == {"segment": 1}
        assert cache.get("old-fig") == {"legacy": True}
