"""Unit tests for whole-workload characterization."""

import pytest

from repro.core.workload import WorkloadFunction, characterize
from repro.sim.profile import KernelProfile

MB = 1024 * 1024


def functions():
    heavy = KernelProfile.streaming("heavy", 32 * MB, 32 * MB, ops_per_byte=0.3)
    light = KernelProfile.cache_resident("light", 1 * MB, reuse_factor=16,
                                         ops_per_byte=2.0)
    return [
        WorkloadFunction("heavy", heavy, accelerator_key="texture_tiling"),
        WorkloadFunction("light", light),
    ]


class TestCharacterize:
    def test_shares_sum_to_one(self):
        ch = characterize("wl", functions())
        assert sum(ch.energy_shares().values()) == pytest.approx(1.0)
        assert sum(ch.time_shares().values()) == pytest.approx(1.0)

    def test_streaming_function_dominates_energy(self):
        ch = characterize("wl", functions())
        assert ch.energy_share("heavy") > ch.energy_share("light")

    def test_movement_share_le_energy_share(self):
        ch = characterize("wl", functions())
        for name in ("heavy", "light"):
            assert ch.movement_share_of_workload(name) <= ch.energy_share(name) + 1e-12

    def test_movement_fraction_of_function(self):
        ch = characterize("wl", functions())
        assert ch.movement_fraction_of_function("heavy") > 0.7
        assert ch.movement_fraction_of_function("light") < 0.7

    def test_total_breakdown_matches_sum(self):
        ch = characterize("wl", functions())
        assert ch.total_breakdown.total == pytest.approx(ch.total_energy_j)

    def test_component_matrix_covers_total(self):
        ch = characterize("wl", functions())
        matrix = ch.component_energy_by_function()
        total = sum(sum(row.values()) for row in matrix.values())
        assert total == pytest.approx(ch.total_energy_j)

    def test_function_lookup(self):
        ch = characterize("wl", functions())
        assert ch.function("heavy").name == "heavy"
        with pytest.raises(KeyError):
            ch.function("missing")

    def test_empty_workload(self):
        ch = characterize("empty", [])
        assert ch.total_energy_j == 0.0
        assert ch.data_movement_fraction == 0.0
