"""Fault-injection tests for the resilience layer.

The "faulty engine" here is the *real* sweep stack driven through
:func:`repro.core.resilience.maybe_inject_fault`: a ``REPRO_FAULT_PLAN``
JSON file schedules kill/hang/raise faults for specific targets on
specific attempts, inside the real pool workers.  Each scenario the
design demands is proven end to end:

* crash -> retry -> success, bit-identical to a fault-free run;
* hang -> timeout -> pool respawn, without losing completed targets;
* exhaustion -> quarantine -> degraded result (or a raise under strict);
* interrupt -> resume -> bit-identical to an uninterrupted run;
* corrupted cache/journal entries quarantined, never returned.

CI runs this file under ``REPRO_STRICT=1`` as well, so every test that
*expects* quarantine-instead-of-raise pins ``strict_mode(False)``.
"""

import hashlib
import itertools
import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.core.memo import MemoCache
from repro.core.resilience import (
    FAULT_PLAN_ENV,
    FaultInjected,
    ResilientMap,
    RetryPolicy,
    SweepCheckpoint,
    TargetFailure,
    comparison_to_jsonable,
    sweep_key,
)
from repro.core.runner import ExperimentRunner, SweepResult, _init_worker
from repro.core.target import PimTarget
from repro.obs.recorder import recording
from repro.sim.profile import KernelProfile
from repro.validate import InvariantError, strict_mode

MB = 1024 * 1024

#: Fast policy for tests: immediate-ish retries, deterministic jitter.
FAST = RetryPolicy(max_attempts=3, backoff_base_s=0.01, jitter=0.0)


def sweep_targets(n=4):
    out = []
    for i, name in enumerate(("alpha", "beta", "gamma", "delta")[:n]):
        profile = KernelProfile.streaming(
            name, (8 + 4 * i) * MB, (8 + 4 * i) * MB,
            ops_per_byte=0.2 + 0.1 * i, instruction_overhead=0.1,
            simd_fraction=0.9,
        )
        out.append(PimTarget(name, profile, accelerator_key="texture_tiling",
                             workload="test"))
    return out


def install_plan(tmp_path, monkeypatch, faults):
    """Write a fault plan and point REPRO_FAULT_PLAN at it."""
    plan = tmp_path / "plan.json"
    plan.write_text(json.dumps({"faults": faults}))
    monkeypatch.setenv(FAULT_PLAN_ENV, str(plan))
    return plan


@pytest.fixture
def baseline():
    """A fault-free serial sweep to compare degraded runs against."""
    return ExperimentRunner().evaluate(sweep_targets())


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5, seed=7)
        again = RetryPolicy(backoff_base_s=0.1, jitter=0.5, seed=7)
        assert policy.delay_s("x", 1) == again.delay_s("x", 1)
        assert policy.delay_s("x", 1) != policy.delay_s("y", 1)
        assert policy.delay_s("x", 1) != policy.delay_s("x", 2)

    def test_delay_bounds_and_growth(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, jitter=0.25
        )
        first = policy.delay_s("t", 1)
        second = policy.delay_s("t", 2)
        assert 0.1 <= first <= 0.1 * 1.25
        assert 0.2 <= second <= 0.2 * 1.25


# ----------------------------------------------------------------------
# ResilientMap (serial scheduling semantics)
# ----------------------------------------------------------------------

class TestResilientMapSerial:
    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return x * 2

        with recording() as rec:
            values, failures = ResilientMap(
                flaky, [21], names=["t"], policy=FAST
            ).run()
        assert values == [42]
        assert failures == []
        assert rec.counters.get("core.resilience.retries") == 2

    def test_exhaustion_quarantines(self):
        def doomed(x):
            raise RuntimeError("permanent")

        with strict_mode(False), recording() as rec:
            values, failures = ResilientMap(
                doomed, [1, 2], names=["bad", "ok2"], policy=FAST
            ).run()
        # Item 2 also fails (same fn), so both are quarantined.
        assert values == [None, None]
        assert [f.target for f in failures] == ["bad", "ok2"]
        assert all(f.attempts == 3 for f in failures)
        assert all("permanent" in f.error for f in failures)
        assert rec.counters.get("core.resilience.quarantined") == 2

    def test_raise_failures_reraises_original(self):
        def doomed(x):
            raise KeyError("original")

        with pytest.raises(KeyError, match="original"):
            ResilientMap(
                doomed, [1], names=["t"], policy=FAST, raise_failures=True
            ).run()

    def test_strict_mode_upgrades_quarantine_to_raise(self):
        def doomed(x):
            raise RuntimeError("permanent")

        with strict_mode(True), pytest.raises(InvariantError,
                                              match="exhausted 3 attempt"):
            ResilientMap(doomed, [1], names=["t"], policy=FAST).run()

    def test_keyboard_interrupt_propagates(self):
        def interrupted(x):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ResilientMap(interrupted, [1], names=["t"], policy=FAST).run()


# ----------------------------------------------------------------------
# Crash / hang / quarantine through the real runner + pool
# ----------------------------------------------------------------------

class TestFaultInjection:
    def test_worker_crash_retried_bit_identical(
        self, tmp_path, monkeypatch, baseline
    ):
        install_plan(tmp_path, monkeypatch, {"beta": ["kill"]})
        with recording() as rec:
            result = ExperimentRunner().evaluate(
                sweep_targets(), jobs=2, retry_policy=FAST
            )
        assert not result.degraded
        assert result.comparisons == baseline.comparisons
        assert rec.counters.get("core.resilience.retries") >= 1

    def test_hung_worker_timed_out_and_respawned(
        self, tmp_path, monkeypatch, baseline
    ):
        install_plan(tmp_path, monkeypatch, {"gamma": ["hang:60"]})
        policy = RetryPolicy(
            max_attempts=3, backoff_base_s=0.01, jitter=0.0, timeout_s=1.0
        )
        start = time.monotonic()
        with recording() as rec:
            result = ExperimentRunner().evaluate(
                sweep_targets(), jobs=2, retry_policy=policy
            )
        assert time.monotonic() - start < 30.0  # nowhere near the 60s hang
        assert not result.degraded
        # Completed targets survived the pool respawn.
        assert result.comparisons == baseline.comparisons
        assert rec.counters.get("core.resilience.timeouts") >= 1

    def test_exhaustion_quarantines_and_degrades(
        self, tmp_path, monkeypatch, baseline
    ):
        install_plan(
            tmp_path, monkeypatch, {"beta": ["raise:boom"] * 3}
        )
        with strict_mode(False), recording() as rec:
            result = ExperimentRunner().evaluate(
                sweep_targets(), retry_policy=FAST
            )
        assert result.degraded
        assert [f.target for f in result.failures] == ["beta"]
        assert result.failures[0].attempts == 3
        assert "boom" in result.failures[0].error
        assert result.names == ["alpha", "gamma", "delta"]
        # Survivors are bit-identical to the fault-free run.
        survivors = [
            c for c in baseline.comparisons if c.target.name != "beta"
        ]
        assert result.comparisons == survivors
        assert rec.counters.get("core.resilience.quarantined") == 1
        assert rec.counters.get("core.resilience.retries") == 2

    def test_quarantine_raises_under_strict(self, tmp_path, monkeypatch):
        install_plan(tmp_path, monkeypatch, {"beta": ["raise"] * 3})
        with strict_mode(True), pytest.raises(InvariantError):
            ExperimentRunner().evaluate(sweep_targets(), retry_policy=FAST)

    def test_no_policy_fails_fast_with_no_resilience_counters(
        self, tmp_path, monkeypatch
    ):
        install_plan(tmp_path, monkeypatch, {"beta": ["raise:fatal"]})
        with recording() as rec, pytest.raises(FaultInjected, match="fatal"):
            ExperimentRunner().evaluate(sweep_targets())
        # Legacy contract: the fault-free counter surface has *no*
        # core.resilience.* keys at all (absent, not zero).
        assert not [
            k for k in rec.counters.as_dict() if k.startswith("core.resilience.")
        ]

    def test_degraded_rows_carry_failed_stub(self, tmp_path, monkeypatch):
        install_plan(tmp_path, monkeypatch, {"delta": ["raise"] * 3})
        with strict_mode(False):
            result = ExperimentRunner().evaluate(
                sweep_targets(), retry_policy=FAST
            )
        rows = result.rows()
        assert [r["target"] for r in rows] == [
            "alpha", "beta", "gamma", "delta"
        ]
        stub = rows[-1]
        assert stub["failed"] is True
        assert stub["attempts"] == 3
        assert "error" in stub
        # Surviving rows keep the exact legacy schema (no "failed" key).
        assert all("failed" not in r for r in rows[:-1])


# ----------------------------------------------------------------------
# kill -9 of a real pool worker (no fault plan: an external murder)
# ----------------------------------------------------------------------

def _slow_echo(x):
    time.sleep(0.5)
    return x


def _child_pids():
    """PIDs of our direct children, minus multiprocessing's trackers."""
    me = os.getpid()
    out = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = Path("/proc", entry, "stat").read_text()
            cmdline = Path("/proc", entry, "cmdline").read_bytes()
        except OSError:
            continue
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == me and b"tracker" not in cmdline:
            out.append(int(entry))
    return out


class TestExternalKill:
    def test_sweep_survives_kill_dash_nine(self):
        killed = []

        def assassin():
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                children = _child_pids()
                if children:
                    time.sleep(0.2)  # let workers pick up tasks
                    victim = children[0]
                    try:
                        os.kill(victim, 9)
                        killed.append(victim)
                    except OSError:
                        continue
                    return
                time.sleep(0.05)

        thread = threading.Thread(target=assassin)
        thread.start()
        try:
            values, failures = ResilientMap(
                _slow_echo, [1, 2, 3, 4], names=list("abcd"),
                policy=FAST, jobs=2,
            ).run()
        finally:
            thread.join()
        assert killed, "assassin never found a pool worker to kill"
        assert values == [1, 2, 3, 4]
        assert failures == []


# ----------------------------------------------------------------------
# Worker diagnostics
# ----------------------------------------------------------------------

def _probe_handlers(_):
    import faulthandler
    import signal

    handler = signal.getsignal(signal.SIGTERM)
    custom = callable(handler) and handler not in (
        signal.SIG_DFL, signal.SIG_IGN
    )
    return faulthandler.is_enabled(), custom


class _PoolWithoutProcesses:
    """A pool whose private ``_processes`` map is missing (future Python)."""

    def shutdown(self, wait=False, cancel_futures=False):
        pass


class _FakeWorker:
    """A terminatable worker handle, as ``processes()`` must return."""

    def __init__(self):
        self.terminated = False
        self.killed = False

    def terminate(self):
        self.terminated = True

    def join(self, timeout=None):
        pass

    def is_alive(self):
        return False


class _HangExecutor:
    """A custom executor whose futures never complete.

    Models a remote fleet mid-outage: submissions are accepted but no
    result ever arrives, so every item trips ``policy.timeout_s`` and
    ``_kill_pool`` runs against an executor with no ``_processes``.
    """

    def __init__(self, kill_protocol=True, processes_protocol=False):
        self.kill_calls = 0
        self.workers = [_FakeWorker(), _FakeWorker()]
        if kill_protocol:
            self.kill = self._kill
        if processes_protocol:
            self.processes = self._processes

    def _kill(self):
        self.kill_calls += 1

    def _processes(self):
        return list(self.workers)

    def submit(self, fn, item):
        from concurrent.futures import Future

        future = Future()
        future.set_running_or_notify_cancel()
        return future  # never resolved: a hung remote worker

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestKillPool:
    def test_no_discoverable_processes_is_counted_not_silent(self):
        mapper = ResilientMap(lambda x: x, [])
        with recording() as rec:
            mapper._kill_pool(_PoolWithoutProcesses())
        assert rec.counters.get("core.resilience.pool_kill_no_workers") == 1

    def test_real_pool_kill_is_not_counted_as_blind(self):
        mapper = ResilientMap(lambda x: x, [])
        pool = ProcessPoolExecutor(max_workers=1)
        pool.submit(int, 0).result()  # force the worker to exist
        with recording() as rec:
            mapper._kill_pool(pool)
        assert rec.counters.get("core.resilience.pool_kill_no_workers") == 0

    def test_custom_kill_protocol_is_preferred(self):
        pool = _HangExecutor(kill_protocol=True, processes_protocol=True)
        mapper = ResilientMap(lambda x: x, [])
        with recording() as rec:
            mapper._kill_pool(pool)
        assert pool.kill_calls == 1
        # kill() owns teardown: processes() must not also be walked.
        assert not any(w.terminated for w in pool.workers)
        assert rec.counters.get("core.resilience.pool_kill_no_workers") == 0

    def test_processes_protocol_discovers_custom_workers(self):
        pool = _HangExecutor(kill_protocol=False, processes_protocol=True)
        mapper = ResilientMap(lambda x: x, [])
        with recording() as rec:
            mapper._kill_pool(pool)
        assert all(w.terminated for w in pool.workers)
        assert rec.counters.get("core.resilience.pool_kill_no_workers") == 0

    def test_hang_teardown_reaches_custom_executor_kill(self):
        """End to end: a hung custom executor is torn down via kill().

        Before the executor-teardown protocol, any ``pool_factory``
        executor without ``_processes`` always took the blind
        ``pool_kill_no_workers`` path and leaked its hung workers.
        """
        pools = []

        def factory(mapper):
            pools.append(_HangExecutor(kill_protocol=True))
            return pools[-1]

        policy = RetryPolicy(
            max_attempts=1, backoff_base_s=0.0, jitter=0.0, timeout_s=0.2
        )
        with strict_mode(False):
            with recording() as rec:
                values, failures = ResilientMap(
                    _slow_echo, ["a", "b"], names=["a", "b"],
                    policy=policy, jobs=2, pool_factory=factory,
                ).run()
        assert values == [None, None]
        assert {f.target for f in failures} == {"a", "b"}
        assert sum(p.kill_calls for p in pools) >= 1
        assert rec.counters.get("core.resilience.pool_kill_no_workers") == 0
        assert rec.counters.get("core.resilience.timeouts") == 2


class TestWorkerDiagnostics:
    def test_pool_workers_install_fault_handlers(self):
        with ProcessPoolExecutor(
            max_workers=1, initializer=_init_worker, initargs=(None, None)
        ) as pool:
            enabled, custom = pool.submit(_probe_handlers, 0).result()
        assert enabled
        assert custom

    def test_initializer_failure_leaves_cause_on_stderr(self, capsys):
        with pytest.raises(BaseException):
            _init_worker(object(), None)
        assert "pool worker initializer failed" in capsys.readouterr().err


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


class TestConfigShipping:
    def test_unpicklable_config_fails_fast_with_cause(self):
        runner = ExperimentRunner()
        runner.energy_params = _Unpicklable()
        with pytest.raises(ValueError, match="pickle cleanly"):
            runner.evaluate(sweep_targets(), jobs=2, retry_policy=FAST)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

class TestCheckpointResume:
    def test_interrupted_sweep_resumes_bit_identical(
        self, tmp_path, monkeypatch, baseline
    ):
        journal = tmp_path / "sweep.jsonl"
        # Interrupt the sweep at the third target (legacy fail-fast, so
        # the exception escapes evaluate -- a genuine interruption).
        install_plan(tmp_path, monkeypatch, {"gamma": ["raise:interrupted"]})
        with pytest.raises(FaultInjected):
            ExperimentRunner().evaluate(sweep_targets(), checkpoint=journal)
        monkeypatch.delenv(FAULT_PLAN_ENV)
        with recording() as rec:
            result = ExperimentRunner().evaluate(
                sweep_targets(), checkpoint=journal, resume=True
            )
        assert rec.counters.get("core.resilience.resumed") == 2
        assert result.comparisons == baseline.comparisons
        assert result.rows() == baseline.rows()

    def test_resume_never_recomputes_journaled_targets(
        self, tmp_path, monkeypatch, baseline
    ):
        journal = tmp_path / "sweep.jsonl"
        ExperimentRunner().evaluate(sweep_targets(), checkpoint=journal)
        # Any recompute would now die on the first attempt.
        install_plan(
            tmp_path, monkeypatch,
            {t.name: ["raise:recomputed"] for t in sweep_targets()},
        )
        result = ExperimentRunner().evaluate(
            sweep_targets(), checkpoint=journal, resume=True
        )
        assert result.comparisons == baseline.comparisons

    def test_torn_final_line_is_dropped_and_recomputed(
        self, tmp_path, baseline
    ):
        journal = tmp_path / "sweep.jsonl"
        ExperimentRunner().evaluate(sweep_targets(), checkpoint=journal)
        torn = journal.read_text()[:-20]  # tear the last record
        journal.write_text(torn)
        with recording() as rec:
            result = ExperimentRunner().evaluate(
                sweep_targets(), checkpoint=journal, resume=True
            )
        assert rec.counters.get("core.resilience.checkpoint.torn") == 1
        assert rec.counters.get("core.resilience.resumed") == 3
        assert result.comparisons == baseline.comparisons

    def test_stale_journal_rotated_not_mixed(self, tmp_path, baseline):
        journal = tmp_path / "sweep.jsonl"
        stale = SweepCheckpoint(journal, key="stale-code-version")
        stale.append("alpha", {"bogus": True})
        result = ExperimentRunner().evaluate(
            sweep_targets(), checkpoint=journal, resume=True
        )
        assert result.comparisons == baseline.comparisons
        rotated = tmp_path / "sweep.jsonl.stale"
        assert rotated.exists()
        assert "bogus" in rotated.read_text()

    def test_parallel_checkpointed_run_matches_serial(
        self, tmp_path, baseline
    ):
        journal = tmp_path / "sweep.jsonl"
        result = ExperimentRunner().evaluate(
            sweep_targets(), jobs=2, retry_policy=FAST, checkpoint=journal
        )
        assert result.comparisons == baseline.comparisons
        entries = SweepCheckpoint(journal, key=sweep_key((None, None))).entries()
        assert sorted(entries) == ["alpha", "beta", "delta", "gamma"]

    def test_payload_key_order_survives_resume(self, tmp_path):
        """Figure rows render columns in dict-insertion order, so the
        journal must not alphabetize payload keys on the way through."""
        path = tmp_path / "j.jsonl"
        SweepCheckpoint(path, key="k").append(
            "fig", {"rows": [{"page": "Docs", "alpha": 1}]}
        )
        reloaded = SweepCheckpoint(path, key="k").entries()
        assert list(reloaded["fig"]["rows"][0]) == ["page", "alpha"]

    def test_checkpoint_counts_writes(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        with recording() as rec:
            ExperimentRunner().evaluate(sweep_targets(2), checkpoint=journal)
        assert rec.counters.get("core.resilience.checkpoint.writes") == 2

    def test_resume_from_legacy_jsonl_journal_bit_identical(
        self, tmp_path, monkeypatch, baseline
    ):
        """The migration path: a pre-segment JSONL journal resumes a
        sweep bit-identically and is rewritten as a segment blob on the
        first append."""
        journal = tmp_path / "sweep.jsonl"
        key = sweep_key((None, None))
        lines = [json.dumps({"schema": SweepCheckpoint.SCHEMA, "key": key})]
        for comparison in baseline.comparisons[:2]:
            payload = comparison_to_jsonable(comparison)
            body = json.dumps(payload, sort_keys=True)
            lines.append(json.dumps({
                "name": comparison.target.name,
                "payload": payload,
                "sha": hashlib.sha256(body.encode()).hexdigest()[:16],
            }))
        journal.write_text("\n".join(lines) + "\n")
        # Recomputing a journaled target would now die on first attempt.
        install_plan(
            tmp_path, monkeypatch,
            {"alpha": ["raise:recomputed"], "beta": ["raise:recomputed"]},
        )
        with recording() as rec:
            result = ExperimentRunner().evaluate(
                sweep_targets(), checkpoint=journal, resume=True
            )
        assert rec.counters.get("core.resilience.resumed") == 2
        # Bit-identical to the uninterrupted run (and hence to a
        # segment-journal resume, which asserts the same equality).
        assert result.comparisons == baseline.comparisons
        assert json.dumps(result.rows()) == json.dumps(baseline.rows())
        # The journal now *is* a segment blob holding all four targets.
        from repro.core.store import peek_key

        assert peek_key(journal) == key
        reloaded = SweepCheckpoint(journal, key=key).entries()
        assert sorted(reloaded) == ["alpha", "beta", "delta", "gamma"]


# ----------------------------------------------------------------------
# SweepResult aggregates under degradation
# ----------------------------------------------------------------------

class TestSweepResultEdges:
    def test_empty_sweep_max_raises_clearly(self):
        empty = SweepResult()
        for prop in (
            "max_pim_core_energy_reduction", "max_pim_acc_energy_reduction",
            "max_pim_core_speedup", "max_pim_acc_speedup",
        ):
            with pytest.raises(ValueError, match="empty sweep"):
                getattr(empty, prop)

    def test_empty_sweep_error_mentions_quarantine(self):
        failed = SweepResult(
            failures=[TargetFailure("x", 3, "RuntimeError('boom')", 0.1)]
        )
        assert failed.degraded
        with pytest.raises(ValueError, match="1 target\\(s\\) quarantined"):
            failed.max_pim_acc_speedup

    def test_empty_sweep_means_are_zero(self):
        assert SweepResult().mean_pim_core_speedup == 0.0


# ----------------------------------------------------------------------
# Figure harness degradation + resume
# ----------------------------------------------------------------------

class TestFigureHarness:
    def _patch_experiments(self, monkeypatch, fns):
        from repro.analysis import report

        monkeypatch.setattr(report, "EXPERIMENTS", tuple(fns))
        return report

    def test_failing_figure_yields_degraded_placeholder(self, monkeypatch):
        from repro.analysis.base import FigureResult

        def fig_ok():
            return FigureResult(figure_id="F1", title="ok", rows=[{"x": 1}])

        def fig_bad():
            raise RuntimeError("figure exploded")

        report = self._patch_experiments(monkeypatch, [fig_ok, fig_bad])
        with strict_mode(False):
            results = report.all_results(
                retry_policy=RetryPolicy(
                    max_attempts=2, backoff_base_s=0.0, jitter=0.0
                )
            )
        assert results[0].figure_id == "F1"
        assert results[1].figure_id == "fig_bad"
        assert results[1].title == "(not regenerated)"
        assert "DEGRADED" in results[1].notes
        assert "2 attempt(s)" in results[1].notes

    def test_figures_resume_skips_regeneration(self, monkeypatch, tmp_path):
        from repro.analysis.base import FigureResult

        calls = {"n": 0}

        def fig_counted():
            calls["n"] += 1
            return FigureResult(figure_id="F1", title="t", rows=[{"x": 1}])

        report = self._patch_experiments(monkeypatch, [fig_counted])
        journal = tmp_path / "figures.jsonl"
        first = report.all_results(checkpoint=journal)
        second = report.all_results(checkpoint=journal, resume=True)
        assert calls["n"] == 1
        assert [r.to_jsonable() for r in first] == [
            r.to_jsonable() for r in second
        ]

    def test_serial_checkpoint_with_recorder_enabled(
        self, monkeypatch, tmp_path
    ):
        """Serial runs return bare FigureResults even when observed.

        Regression: the checkpoint hook used to unwrap ``value[0]``
        whenever the recorder was on, which crashed ``repro figures
        --manifest DIR --checkpoint PATH`` at the default ``--jobs 1``.
        """
        from repro.analysis.base import FigureResult

        def fig_one():
            return FigureResult(figure_id="F1", title="t", rows=[{"x": 1}])

        report = self._patch_experiments(monkeypatch, [fig_one])
        journal = tmp_path / "figures.jsonl"
        with recording() as rec:
            first = report.all_results(checkpoint=journal)
        assert first[0].figure_id == "F1"
        assert rec.counters.get("core.resilience.checkpoint.writes") == 1
        with recording() as rec:
            second = report.all_results(checkpoint=journal, resume=True)
        assert rec.counters.get("core.resilience.resumed") == 1
        assert [r.to_jsonable() for r in first] == [
            r.to_jsonable() for r in second
        ]


# ----------------------------------------------------------------------
# MemoCache: corruption quarantine, debris removal, concurrent writers
# ----------------------------------------------------------------------

class TestMemoCorruption:
    def test_tampered_value_is_quarantined_never_returned(self, tmp_path):
        cache = MemoCache(tmp_path, version="v1")
        path = cache.put("entry", {"answer": 42})
        # Alter the payload bytes inside the segment's entry frame: the
        # body still parses as JSON, but the frame checksum now lies.
        raw = path.read_bytes()
        assert raw.count(b'"answer": 42') == 1
        path.write_bytes(raw.replace(b'"answer": 42', b'"answer": 41'))
        with recording() as rec:
            assert cache.get("entry", default="MISS") == "MISS"
        assert rec.counters.get("core.memo.corrupt") == 1
        assert rec.counters.get("core.store.corrupt") == 1
        # The altered entry is an honest miss from now on.
        with recording() as rec:
            assert cache.get("entry") is None
        assert rec.counters.get("core.memo.corrupt") == 0
        assert rec.counters.get("core.memo.misses") == 1
        # Compaction quarantines the tampered blob for inspection.
        stats = cache.compact()
        assert stats.quarantined == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_truncated_entry_is_dropped_as_torn(self, tmp_path):
        cache = MemoCache(tmp_path, version="v1", flush_every=2)
        cache.put("entry", {"rows": list(range(100))})
        path = cache.put("other", {"rows": [2]})
        cache.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])  # cut into the committing index frame
        fresh = MemoCache(tmp_path, version="v1")
        with recording() as rec:
            assert fresh.get("entry") is None
            assert fresh.get("other") is None
        assert rec.counters.get("core.store.torn") == 1
        assert rec.counters.get("core.memo.corrupt") == 0
        # A re-put lands in a new per-process blob and reads back fine.
        fresh.put("entry", {"rows": [1]})
        assert fresh.get("entry") == {"rows": [1]}

    def test_non_string_dict_keys_are_not_misquarantined(self, tmp_path):
        """JSON stringifies int keys, changing sort order across a round
        trip ({10: ...} sorts numerically at put, lexicographically after
        reload); the checksum is over the canonical re-parsed form, so
        such entries must load as hits, not corrupt."""
        cache = MemoCache(tmp_path, version="v1")
        cache.put("entry", {10: "ten", 2: "two"})
        with recording() as rec:
            got = cache.get("entry", default="MISS")
        assert got == {"10": "ten", "2": "two"}
        assert rec.counters.get("core.memo.hits") == 1
        assert rec.counters.get("core.memo.corrupt") == 0

    def test_clear_sweeps_tmp_and_corrupt_debris(self, tmp_path):
        cache = MemoCache(tmp_path, version="v1")
        cache.put("entry", {"x": 1})
        (tmp_path / "dead.tmp.12345").write_text("{")
        (tmp_path / "old.corrupt").write_text("{")
        assert cache.clear() == 3
        assert list(tmp_path.iterdir()) == []

    def test_prune_removes_only_aged_foreign_versions(self, tmp_path):
        current = MemoCache(tmp_path, version="now")
        keep = current.put("mine", {"x": 1})
        old = MemoCache(tmp_path, version="bygone").put("theirs", {"y": 2})
        debris = tmp_path / "dead.tmp.99"
        debris.write_text("{")
        ancient = time.time() - 90 * 86400
        for path in (keep, old, debris):
            os.utime(path, (ancient, ancient))
        removed = current.prune(max_age_days=30)
        assert removed == 2
        assert keep.exists()  # current version is never pruned
        assert not old.exists()
        assert not debris.exists()
        assert current.get("mine") == {"x": 1}


def _hammer_puts(directory, version, value, rounds):
    cache = MemoCache(Path(directory), version=version)
    for _ in range(rounds):
        cache.put("shared", value, config={"k": 1})


class TestMemoConcurrency:
    def test_concurrent_writers_never_tear_reads(self, tmp_path):
        value_a = {"who": "a", "rows": list(range(200))}
        value_b = {"who": "b", "rows": list(range(200, 400))}
        writers = [
            multiprocessing.Process(
                target=_hammer_puts, args=(str(tmp_path), "v1", value, 40)
            )
            for value in (value_a, value_b)
        ]
        cache = MemoCache(tmp_path, version="v1")
        for w in writers:
            w.start()
        try:
            with recording() as rec:
                while any(w.is_alive() for w in writers):
                    got = cache.get("shared", config={"k": 1})
                    assert got in (None, value_a, value_b)
                final = cache.get("shared", config={"k": 1})
        finally:
            for w in writers:
                w.join()
        assert final in (value_a, value_b)
        assert rec.counters.get("core.memo.corrupt") == 0
        assert not list(tmp_path.glob("*.corrupt"))

    def test_every_two_phase_commit_interleaving_is_atomic(self, tmp_path):
        """Readers see nothing or a complete doc at every commit step."""
        value = {"a": {"payload": [1, 2, 3]}, "b": {"payload": [4, 5, 6]}}
        steps = [("a", "tmp"), ("a", "replace"), ("b", "tmp"), ("b", "replace")]
        orders = [
            order for order in itertools.permutations(steps)
            if order.index(("a", "tmp")) < order.index(("a", "replace"))
            and order.index(("b", "tmp")) < order.index(("b", "replace"))
        ]
        assert len(orders) == 6
        for case, order in enumerate(orders):
            root = tmp_path / ("case%d" % case)
            root.mkdir()
            cache = MemoCache(root, version="v1")
            path = cache._path("k", None)
            tmps = {}
            with recording() as rec:
                for writer, phase in order:
                    if phase == "tmp":
                        value_json = json.dumps(value[writer], sort_keys=True)
                        document = {
                            "name": "k",
                            "version": "v1",
                            "value": value[writer],
                            "checksum": MemoCache._checksum(value_json),
                        }
                        tmp = path.with_suffix(".tmp.%s" % writer)
                        tmp.write_text(json.dumps(document))
                        tmps[writer] = tmp
                    else:
                        os.replace(tmps[writer], path)
                    got = cache.get("k")
                    assert got in (None, value["a"], value["b"])
            assert rec.counters.get("core.memo.corrupt") == 0

    def test_memo_and_checkpoint_writers_share_a_directory(self, tmp_path):
        """Segment blobs and a checkpoint journal coexist in one
        directory: per-process memo blobs and the journal never collide,
        and nothing is lost, duplicated, or corrupted."""
        value_a = {"who": "a", "rows": list(range(100))}
        value_b = {"who": "b", "rows": list(range(100, 200))}
        writers = [
            multiprocessing.Process(
                target=_hammer_puts, args=(str(tmp_path), "v1", value, 25)
            )
            for value in (value_a, value_b)
        ] + [
            multiprocessing.Process(
                target=_hammer_checkpoint, args=(str(tmp_path), 25)
            )
        ]
        for w in writers:
            w.start()
        for w in writers:
            w.join()
        assert all(w.exitcode == 0 for w in writers)
        with recording() as rec:
            cache = MemoCache(tmp_path, version="v1")
            assert cache.get("shared", config={"k": 1}) in (value_a, value_b)
            journal = SweepCheckpoint(tmp_path / "sweep.jsonl", key="ck")
            entries = journal.entries()
        assert sorted(entries) == ["t%03d" % i for i in range(25)]
        assert all(entries["t%03d" % i] == {"i": i} for i in range(25))
        assert rec.counters.get("core.memo.corrupt") == 0
        assert rec.counters.get("core.store.corrupt") == 0
        assert not list(tmp_path.glob("*.corrupt"))


def _hammer_checkpoint(directory, count):
    journal = SweepCheckpoint(Path(directory) / "sweep.jsonl", key="ck")
    for i in range(count):
        journal.append("t%03d" % i, {"i": i})
    journal.close()


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------

class TestCliResilience:
    def test_resume_requires_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["evaluate", "--workload", "chrome", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_evaluate_retries_through_cli(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        install_plan(tmp_path, monkeypatch, {"texture_tiling": ["raise"]})
        assert main([
            "evaluate", "--workload", "chrome", "--max-retries", "3",
        ]) == 0
        assert "texture_tiling" in capsys.readouterr().out

    def test_evaluate_reports_quarantine_degraded(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        # --max-retries N is N *retries*: N + 1 attempts must all fail.
        install_plan(
            tmp_path, monkeypatch, {"texture_tiling": ["raise:dead"] * 4}
        )
        with strict_mode(False):
            assert main([
                "evaluate", "--workload", "chrome", "--max-retries", "3",
            ]) == 0
        captured = capsys.readouterr()
        assert "FAILED after 4 attempt(s)" in captured.out
        assert "DEGRADED" in captured.err

    def test_max_retries_zero_quarantines_on_first_failure(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        install_plan(
            tmp_path, monkeypatch, {"texture_tiling": ["raise:dead"]}
        )
        with strict_mode(False):
            assert main([
                "evaluate", "--workload", "chrome", "--max-retries", "0",
            ]) == 0
        assert "FAILED after 1 attempt(s)" in capsys.readouterr().out

    def test_negative_max_retries_rejected_by_flag_name(self, capsys):
        from repro.cli import main

        assert main([
            "evaluate", "--workload", "chrome", "--max-retries", "-1",
        ]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_evaluate_checkpoint_resume_round_trip(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        journal = tmp_path / "sweep.jsonl"
        assert main([
            "evaluate", "--workload", "chrome",
            "--checkpoint", str(journal),
        ]) == 0
        first = capsys.readouterr().out
        # Any recompute on resume would die immediately.
        install_plan(
            tmp_path, monkeypatch,
            {"texture_tiling": ["raise"], "color_blitting": ["raise"],
             "compression": ["raise"], "decompression": ["raise"]},
        )
        assert main([
            "evaluate", "--workload", "chrome",
            "--checkpoint", str(journal), "--resume",
        ]) == 0
        assert capsys.readouterr().out == first
