"""Integration: the Section 3.2 identification pipeline accepts exactly
the paper's PIM targets when run over our workload characterizations."""

import pytest

from repro.core.offload import OffloadEngine
from repro.core.target import PimTarget, evaluate_candidate
from repro.core.workload import characterize
from repro.workloads.chrome.pages import PAGES
from repro.workloads.chrome.zram import TabSwitchingSession
from repro.workloads.tensorflow.models import vgg19
from repro.workloads.tensorflow.network import network_functions
from repro.workloads.vp9.profiles import decoder_functions, encoder_functions


def evaluate_workload(workload_name, functions, engine):
    """Run the full Section 3.2 pipeline over one workload."""
    ch = characterize(workload_name, functions)
    evaluations = {}
    for f in functions:
        if f.accelerator_key is None:
            continue
        target = PimTarget(
            f.name, f.profile, accelerator_key=f.accelerator_key,
            invocations=f.invocations, workload=workload_name,
        )
        comparison = engine.compare(target)
        evaluations[f.name] = evaluate_candidate(
            name=f.name,
            profile=f.profile,
            energy_share=ch.energy_share(f.name),
            movement_share_of_workload=ch.movement_share_of_workload(f.name),
            movement_fraction_of_function=ch.movement_fraction_of_function(f.name),
            pim_speedup=comparison.pim_core_speedup,
            accelerator_key=f.accelerator_key,
        )
    return evaluations


@pytest.fixture(scope="module")
def engine():
    return OffloadEngine()


class TestChromeTargets:
    def test_scrolling_targets_accepted(self, engine):
        evals = evaluate_workload(
            "docs", PAGES["Google Docs"].scrolling_functions(), engine
        )
        assert evals["texture_tiling"].is_pim_target
        assert evals["color_blitting"].is_pim_target

    def test_tab_switching_targets_accepted(self, engine):
        evals = evaluate_workload(
            "tabs", TabSwitchingSession().workload_functions(), engine
        )
        assert evals["compression"].is_pim_target
        assert evals["decompression"].is_pim_target


class TestTensorFlowTargets:
    def test_packing_and_quantization_accepted(self, engine):
        evals = evaluate_workload("vgg", network_functions(vgg19()), engine)
        assert evals["packing"].is_pim_target
        assert evals["quantization"].is_pim_target

    def test_targets_are_memory_intensive(self, engine):
        evals = evaluate_workload("vgg", network_functions(vgg19()), engine)
        for e in evals.values():
            assert e.mpki > 10


class TestVideoTargets:
    def test_decoder_targets_accepted(self, engine):
        evals = evaluate_workload(
            "dec", decoder_functions(3840, 2160, 10), engine
        )
        assert evals["sub_pixel_interpolation"].is_pim_target
        assert evals["deblocking_filter"].is_pim_target

    def test_encoder_targets_accepted(self, engine):
        evals = evaluate_workload("enc", encoder_functions(1280, 720, 10), engine)
        assert evals["motion_estimation"].is_pim_target
        assert evals["deblocking_filter"].is_pim_target


class TestRejections:
    def test_gemm_not_movement_dominated(self, engine):
        """Conv2D/MatMul spends 67.5% of its energy on computation, so it
        fails criterion 4 -- the paper's reason for leaving it on the CPU
        (Section 5.2)."""
        ch = characterize("vgg", network_functions(vgg19()))
        assert ch.movement_fraction_of_function("conv2d_matmul") < 0.5

    def test_compute_bound_function_rejected(self, engine):
        """Layout/JS (the 'other' scrolling bucket) is not a candidate."""
        ch = characterize("docs", PAGES["Google Docs"].scrolling_functions())
        other = ch.function("other").function.profile
        assert other.mpki > 10 or ch.movement_fraction_of_function("other") < 0.9
