"""Crash-consistency suite for the segment-merged result store.

The store's commit contract — an entry is committed iff a valid index
frame covers it, and recovery drops only the uncommitted tail — is
proven mechanically, not by example:

* **truncation sweep**: a multi-chunk blob is cut at *every* byte
  boundary; at each cut the surviving entries must be exactly those
  committed by the last intact index frame, writer recovery must
  truncate the tail and keep appending, and ``core.store.torn`` must
  count exactly the cuts that actually tore a flush;
* **corruption sweep**: every single byte of the blob is flipped; a
  flip may *hide* entries (counted torn/corrupt) but may never change
  a returned value — the never-silently-altered property;
* **kill -9 mid-flush**: a real writer process is murdered between
  ``write`` slices (``REPRO_FAULT_PLAN`` + ``REPRO_STORE_WRITE_CHUNK``)
  at several slice offsets; the committed chunk survives, the doomed
  chunk vanishes wholesale, and recovery rebuilds a bit-identical blob;
* **concurrent writers**: N processes append through per-process blobs
  into one store with no lost, duplicated, or corrupted entries.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.core.resilience import FAULT_PLAN_ENV
from repro.core.store import (
    WRITE_CHUNK_ENV,
    CompactionBusy,
    CompactionStats,
    SegmentReader,
    SegmentStore,
    SegmentWriter,
    peek_key,
)
from repro.obs.recorder import recording

A = {"x": 1}
B = {"y": [1, 2, 3], "page": "Docs"}
C = "last"
FULL = {"a": A, "b": B, "c": C}


def build_blob(directory, key="k"):
    """A blob with two committed chunks: (a, b) then (c).

    The first chunk is a batched E/E/X triple; the second, being a
    single entry, is one self-committing S frame.  Returns
    (path, [size_after_header, size_after_chunk1, final_size]).
    """
    path = Path(directory) / "t.seg"
    writer = SegmentWriter(path, key)
    writer.open()
    sizes = [os.path.getsize(path)]
    writer.append_chunk([("a", A), ("b", B)])
    sizes.append(os.path.getsize(path))
    writer.append_chunk([("c", C)])
    sizes.append(os.path.getsize(path))
    writer.close()
    return path, sizes


def load(path):
    reader = SegmentReader(path)
    reader.refresh()
    return reader


# ----------------------------------------------------------------------
# Format basics
# ----------------------------------------------------------------------

class TestSegmentBasics:
    def test_roundtrip_and_point_lookup(self, tmp_path):
        path, _ = build_blob(tmp_path)
        reader = load(path)
        assert reader.key == "k"
        assert reader.entries() == FULL
        assert reader.get("b") == B
        assert reader.get("nope", 7) == 7
        assert "a" in reader and "nope" not in reader

    def test_payload_key_order_is_preserved(self, tmp_path):
        path, _ = build_blob(tmp_path)
        assert list(load(path).get("b")) == ["y", "page"]

    def test_peek_key_reads_only_the_header(self, tmp_path):
        path, _ = build_blob(tmp_path)
        assert peek_key(path) == "k"
        assert peek_key(tmp_path / "absent.seg") is None
        garbage = tmp_path / "g.seg"
        garbage.write_text("not a segment\n")
        assert peek_key(garbage) is None

    def test_rewritten_name_later_value_wins(self, tmp_path):
        path = tmp_path / "w.seg"
        writer = SegmentWriter(path, "k")
        writer.open()
        writer.append_chunk([("n", 1)])
        writer.append_chunk([("n", 2)])
        writer.close()
        assert load(path).get("n") == 2

    def test_writer_refuses_foreign_key_blob(self, tmp_path):
        path, _ = build_blob(tmp_path, key="theirs")
        writer = SegmentWriter(path, "ours")
        with pytest.raises(ValueError, match="rotate"):
            writer.open()

    def test_store_reads_only_matching_key(self, tmp_path):
        foreign = SegmentStore(tmp_path, key="other", prefix="seg")
        foreign.append("a", 1)
        foreign.close()
        store = SegmentStore(tmp_path, key="mine", prefix="seg")
        assert store.entries() == {}
        assert store.get("a", "MISS") == "MISS"

    def test_incremental_refresh_sees_live_appends(self, tmp_path):
        path = tmp_path / "live.seg"
        writer = SegmentWriter(path, "k")
        writer.open()
        writer.append_chunk([("one", 1)])
        reader = load(path)
        assert reader.entries() == {"one": 1}
        writer.append_chunk([("two", 2)])
        writer.close()
        reader.refresh()
        assert reader.entries() == {"one": 1, "two": 2}

    def test_store_counters_flushes_and_entries(self, tmp_path):
        with recording() as rec:
            store = SegmentStore(tmp_path, key="k", flush_every=2)
            store.append("a", 1)
            assert rec.counters.get("core.store.flushes") == 0  # buffered
            store.append("b", 2)
            assert rec.counters.get("core.store.flushes") == 1
            store.close()
        assert rec.counters.get("core.store.entries") == 2
        assert store.entries() == {"a": 1, "b": 2}

    def test_single_entry_flush_is_one_self_committing_line(self, tmp_path):
        path = tmp_path / "s.seg"
        writer = SegmentWriter(path, "k")
        writer.open()
        writer.append_chunk([("solo", A)])
        writer.close()
        lines = path.read_bytes().split(b"\n")[:-1]
        assert len(lines) == 2  # header + one S frame, no index line
        assert lines[1][:1] == b"S"
        assert load(path).entries() == {"solo": A}

    def test_buffered_entries_are_readable_before_flush(self, tmp_path):
        store = SegmentStore(tmp_path, key="k", flush_every=100)
        store.append("a", 1)
        assert store.get("a") == 1
        assert store.entries() == {"a": 1}
        assert list(tmp_path.glob("*.seg")) == []  # nothing on disk yet
        blob = store.flush()
        store.close()
        assert load(blob).entries() == {"a": 1}


# ----------------------------------------------------------------------
# Satellite: truncate at every byte boundary
# ----------------------------------------------------------------------

class TestTruncationSweep:
    def test_every_cut_keeps_exactly_the_committed_prefix(self, tmp_path):
        path, sizes = build_blob(tmp_path)
        raw = path.read_bytes()
        assert sizes[-1] == len(raw)
        for cut in range(len(raw) + 1):
            case = tmp_path / ("cut%04d" % cut)
            case.mkdir()
            p = case / "t.seg"
            p.write_bytes(raw[:cut])
            if cut >= sizes[2]:
                committed, expected = sizes[2], dict(FULL)
            elif cut >= sizes[1]:
                committed, expected = sizes[1], {"a": A, "b": B}
            elif cut >= sizes[0]:
                committed, expected = sizes[0], {}
            else:
                committed, expected = 0, {}
            with recording() as rec:
                reader = SegmentReader(p)
                reader.refresh()
                got = reader.entries()
                assert got == expected, "cut at byte %d" % cut
                # Truncation deletes bytes; it must never be reported
                # as silent alteration.
                assert rec.counters.get("core.store.corrupt") == 0
                # Writer recovery: reclaim the blob, append, reread.
                writer = SegmentWriter(p, "k")
                writer.open(reader=reader)
                writer.append_chunk([("new", cut)])
                writer.close()
                torn = rec.counters.get("core.store.torn")
            assert torn == (1 if cut > committed else 0), (
                "cut at byte %d: torn=%d" % (cut, torn)
            )
            merged = dict(expected)
            merged["new"] = cut
            assert load(p).entries() == merged, "cut at byte %d" % cut

    def test_reader_alone_counts_only_stranded_complete_frames(
        self, tmp_path
    ):
        """A partial final line is *pending* to a passive reader (a live
        writer may be mid-write); only a reader that also sees complete
        uncommitted frames — or the writer that reclaims the blob —
        declares the tail torn."""
        path, sizes = build_blob(tmp_path)
        raw = path.read_bytes()
        # Cut mid-way through chunk1's index frame: its entry frames
        # are complete but uncommitted -> torn immediately.
        (tmp_path / "x.seg").write_bytes(raw[: sizes[1] - 10])
        with recording() as rec:
            assert load(tmp_path / "x.seg").entries() == {}
        assert rec.counters.get("core.store.torn") == 1
        # Cut mid-way through an entry frame itself: nothing complete
        # past the committed prefix -> pending, not torn (yet).
        (tmp_path / "y.seg").write_bytes(raw[: sizes[0] + 5])
        with recording() as rec:
            load(tmp_path / "y.seg")
        assert rec.counters.get("core.store.torn") == 0
        # Same for a partial self-committing frame: an S line commits
        # only once whole, so its torn remains are judged by the
        # reclaiming writer, not a passive reader.
        (tmp_path / "z.seg").write_bytes(raw[: len(raw) - 10])
        with recording() as rec:
            assert load(tmp_path / "z.seg").entries() == {"a": A, "b": B}
        assert rec.counters.get("core.store.torn") == 0


# ----------------------------------------------------------------------
# Satellite: flip every byte — hidden is allowed, altered never
# ----------------------------------------------------------------------

class TestCorruptionSweep:
    def _line_spans(self, raw):
        spans = []
        pos = 0
        for line in raw.split(b"\n")[:-1]:
            spans.append((pos, pos + len(line) + 1))
            pos += len(line) + 1
        return spans

    def test_every_single_byte_flip_never_alters_an_entry(self, tmp_path):
        path, _ = build_blob(tmp_path)
        raw = path.read_bytes()
        spans = self._line_spans(raw)
        assert len(spans) == 5  # H, E(a), E(b), X1, S(c)
        hides = {1: {"a"}, 2: {"b"}, 3: {"a", "b"}, 4: {"c"}}
        p = tmp_path / "flip.seg"
        for i in range(len(raw)):
            flipped = bytearray(raw)
            flipped[i] ^= 0xFF
            p.write_bytes(bytes(flipped))
            line = next(j for j, (s, e) in enumerate(spans) if s <= i < e)
            on_newline = i == spans[line][1] - 1
            with recording() as rec:
                got = load(p).entries()
                # The acceptance property: a returned value is always
                # exactly the committed value.
                for name, value in got.items():
                    assert value == FULL[name], "flip at byte %d" % i
                if line == 0:
                    # Header flips invalidate the whole blob.
                    assert got == {}, "flip at byte %d" % i
                elif not on_newline:
                    assert got == {
                        k: v
                        for k, v in FULL.items()
                        if k not in hides[line]
                    }, "flip at byte %d" % i
                    assert (
                        rec.counters.get("core.store.torn")
                        + rec.counters.get("core.store.corrupt")
                    ) >= 1, "flip at byte %d left no evidence" % i

    def test_invalid_header_blob_is_quarantined_by_the_store(self, tmp_path):
        bad = tmp_path / "seg-00000000-1.seg"
        bad.write_text('{"schema": "something-else"}\n')
        store = SegmentStore(tmp_path, key="k", prefix="seg")
        with recording() as rec:
            assert store.entries() == {}
        assert rec.counters.get("core.store.corrupt") == 1
        assert not bad.exists()
        assert bad.with_suffix(".corrupt").exists()

    def test_tampered_index_span_is_rejected(self, tmp_path):
        """An index whose offsets point outside/at non-entry bytes is
        corrupt evidence, not a crash or a wrong read."""
        path = tmp_path / "t.seg"
        writer = SegmentWriter(path, "k")
        writer.open()
        header_end = os.path.getsize(path)
        writer.append_chunk([("a", A)])
        writer.close()
        raw = path.read_bytes()
        # Rewrite the index body to point the entry at the header line,
        # with a fresh (valid!) frame checksum over the lying body.
        from repro.core.store import _frame

        lines = raw.split(b"\n")[:-1]
        body = json.dumps({"i": {"a": [0, header_end]}}).encode()
        path.write_bytes(
            b"\n".join(lines[:-1]) + b"\n" + _frame(b"X", body)
        )
        with recording() as rec:
            reader = load(path)
            assert reader.entries() == {}
        assert rec.counters.get("core.store.corrupt") >= 1


# ----------------------------------------------------------------------
# Satellite: kill -9 a writer mid-flush (REPRO_FAULT_PLAN harness)
# ----------------------------------------------------------------------

DOOMED = {"rows": list(range(50))}


def _killed_writer(directory, plan_path, chunk):
    """Child process: one committed append, then die mid-second-flush."""
    os.environ[WRITE_CHUNK_ENV] = str(chunk)
    os.environ[FAULT_PLAN_ENV] = plan_path
    store = SegmentStore(Path(directory), key="k", prefix="seg", flush_every=1)
    store.append("committed", {"ok": True})
    store.append("doomed", DOOMED)  # scheduled kill lands in here
    os._exit(1)  # pragma: no cover - the kill must have happened


class TestKillMidFlush:
    CHUNK = 7  # bytes per write slice in the victim

    def _slice_counts(self, tmp_path):
        """(slices_before_chunk2, chunk2_slices, reference_blob_bytes).

        Derived by replaying the victim's exact writes in a scratch
        store: same key, same payloads, same frame bytes.
        """
        scratch = tmp_path / "scratch"
        store = SegmentStore(scratch, key="k", prefix="seg", flush_every=1)
        store.append("committed", {"ok": True})
        path = store.segment_path()
        size1 = os.path.getsize(path)
        header = SegmentWriter(path, "k")._header_size()
        store.append("doomed", DOOMED)
        size2 = os.path.getsize(path)
        store.close()

        def slices(nbytes):
            return -(-nbytes // self.CHUNK)

        before = slices(header) + slices(size1 - header)
        return before, slices(size2 - size1), path.read_bytes()

    @pytest.mark.parametrize("slice_index", [0, 1, "mid", "last"])
    def test_kill_between_slices_loses_only_the_doomed_chunk(
        self, tmp_path, slice_index
    ):
        before, chunk2_slices, reference = self._slice_counts(tmp_path)
        assert chunk2_slices > 3  # the sweep below is meaningful
        k = {
            0: 0, 1: 1, "mid": chunk2_slices // 2, "last": chunk2_slices - 1
        }[slice_index]
        workdir = tmp_path / ("kill%s" % k)
        workdir.mkdir()
        plan = workdir / "plan.json"
        plan.write_text(
            json.dumps({"faults": {"store.flush": ["ok"] * (before + k) + ["kill"]}})
        )
        victim = multiprocessing.Process(
            target=_killed_writer, args=(str(workdir), str(plan), self.CHUNK)
        )
        victim.start()
        victim.join(30)
        assert victim.exitcode == -9, "victim was not killed mid-flush"
        blobs = list(workdir.glob("seg-*.seg"))
        assert len(blobs) == 1
        blob = blobs[0]
        # k slices of chunk2 (and everything before) reached the disk.
        assert os.path.getsize(blob) < len(reference)
        with recording() as rec:
            reader = load(blob)
            assert reader.entries() == {"committed": {"ok": True}}
            # Recovery: reclaim the blob, truncate the torn tail, and
            # re-append the lost chunk.
            writer = SegmentWriter(blob, "k")
            writer.open(reader=reader)
            writer.append_chunk([("doomed", DOOMED)])
            writer.close()
            torn = rec.counters.get("core.store.torn")
            assert rec.counters.get("core.store.corrupt") == 0
        assert torn == (1 if k > 0 else 0)
        # The recovered blob is bit-identical to a never-crashed one.
        assert blob.read_bytes() == reference
        assert load(blob).entries() == {
            "committed": {"ok": True}, "doomed": DOOMED
        }


# ----------------------------------------------------------------------
# Satellite: N concurrent writer processes, nothing lost or duplicated
# ----------------------------------------------------------------------

def _hammer_store(directory, who, count):
    store = SegmentStore(Path(directory), key="k", prefix="seg", flush_every=4)
    for i in range(count):
        store.append("%s-%03d" % (who, i), {"who": who, "i": i})
    store.close()


class TestConcurrentWriters:
    def test_n_processes_one_store_no_loss_no_duplication(self, tmp_path):
        count = 50
        writers = [
            multiprocessing.Process(
                target=_hammer_store, args=(str(tmp_path), who, count)
            )
            for who in ("a", "b", "c")
        ]
        reader_store = SegmentStore(tmp_path, key="k", prefix="seg")
        for w in writers:
            w.start()
        try:
            with recording() as rec:
                while any(w.is_alive() for w in writers):
                    for name, value in reader_store.entries().items():
                        who, i = name.split("-")
                        assert value == {"who": who, "i": int(i)}
        finally:
            for w in writers:
                w.join()
        assert all(w.exitcode == 0 for w in writers)
        assert rec.counters.get("core.store.corrupt") == 0
        entries = SegmentStore(tmp_path, key="k", prefix="seg").entries()
        assert len(entries) == 3 * count  # every entry, exactly once
        for who in ("a", "b", "c"):
            for i in range(count):
                assert entries["%s-%03d" % (who, i)] == {"who": who, "i": i}
        # One blob per writer process: appends never contend on a file.
        assert len(list(tmp_path.glob("seg-*.seg"))) == 3
        assert not list(tmp_path.glob("*.corrupt"))

    def test_compact_while_writing_loses_nothing(self, tmp_path):
        """The harness's compact-while-writing interleaving: a reader
        compacting *during* live appends must never lose, duplicate, or
        demote an entry — busy (live-writer) blobs are skipped and
        folded only once their owners exit."""
        count = 50
        writers = [
            multiprocessing.Process(
                target=_hammer_store, args=(str(tmp_path), who, count)
            )
            for who in ("a", "b", "c")
        ]
        compactor = SegmentStore(tmp_path, key="k", prefix="seg")
        for w in writers:
            w.start()
        compactions = 0
        try:
            with recording() as rec:
                while any(w.is_alive() for w in writers):
                    stats = compactor.compact()
                    compactions += 1
                    for name, value in compactor.entries().items():
                        who, i = name.split("-")
                        assert value == {"who": who, "i": int(i)}
                    assert stats.busy_skipped <= 3
        finally:
            for w in writers:
                w.join()
        assert all(w.exitcode == 0 for w in writers)
        assert compactions >= 1
        assert rec.counters.get("core.store.corrupt") == 0
        # Writers are gone: one final compact folds the stragglers.
        final = SegmentStore(tmp_path, key="k", prefix="seg")
        stats = final.compact()
        assert stats.busy_skipped == 0
        entries = final.entries()
        assert len(entries) == 3 * count  # every entry, exactly once
        for who in ("a", "b", "c"):
            for i in range(count):
                assert entries["%s-%03d" % (who, i)] == {"who": who, "i": i}
        assert len(list(tmp_path.glob("seg-*.seg"))) == 1
        assert not list(tmp_path.glob("*.corrupt"))
        assert not list(tmp_path.glob("*.lock*"))


def _hold_store_open(directory, ready, release):
    """Open a store, commit entries, then idle with the blob claimed."""
    import time

    store = SegmentStore(Path(directory), key="k", prefix="seg")
    store.append("held-1", {"v": 1})
    store.append("held-2", {"v": 2})
    Path(ready).write_text("ready")
    while not Path(release).exists():
        time.sleep(0.01)
    store.close()


class TestCompactUnderConcurrency:
    def _spawn_holder(self, tmp_path):
        ready = tmp_path / "ready"
        release = tmp_path / "release"
        holder = multiprocessing.Process(
            target=_hold_store_open,
            args=(str(tmp_path), str(ready), str(release)),
        )
        holder.start()
        while not ready.exists():
            assert holder.is_alive()
        return holder, release

    def test_busy_segment_is_skipped_not_rewritten(self, tmp_path):
        quiet = SegmentStore(tmp_path, key="k", prefix="seg")
        quiet.append("quiet", {"v": 0})
        quiet.close()
        holder, release = self._spawn_holder(tmp_path)
        try:
            busy_paths = [
                p for p in tmp_path.glob("seg-*.seg")
                if p.stem.split("-")[-1] == str(holder.pid)
            ]
            assert len(busy_paths) == 1
            with recording() as rec:
                stats = SegmentStore(tmp_path, key="k", prefix="seg").compact()
            assert stats.busy_skipped == 1
            assert rec.counters.get("core.store.compact_busy_segments") == 1
            # The live writer's blob is untouched; its entries and the
            # compacted ones all remain readable.
            assert busy_paths[0].exists()
            entries = SegmentStore(tmp_path, key="k", prefix="seg").entries()
            assert entries["quiet"] == {"v": 0}
            assert entries["held-1"] == {"v": 1}
            assert entries["held-2"] == {"v": 2}
        finally:
            release.write_text("go")
            holder.join()
        assert holder.exitcode == 0
        # Owner gone: the next compact folds its blob normally.
        stats = SegmentStore(tmp_path, key="k", prefix="seg").compact()
        assert stats.busy_skipped == 0
        assert len(list(tmp_path.glob("seg-*.seg"))) == 1

    def test_busy_blob_winner_is_never_demoted(self, tmp_path):
        """A name whose newest write lives in a busy blob must keep that
        value after compaction — the fresh blob sorts last and would
        otherwise resurrect the older write."""
        old = SegmentStore(tmp_path, key="k", prefix="seg")
        old.append("held-1", {"v": "stale"})  # superseded by the holder
        old.close()
        holder, release = self._spawn_holder(tmp_path)
        try:
            store = SegmentStore(tmp_path, key="k", prefix="seg")
            assert store.entries()["held-1"] == {"v": 1}
            store.compact()
            fresh = SegmentStore(tmp_path, key="k", prefix="seg")
            assert fresh.entries()["held-1"] == {"v": 1}
        finally:
            release.write_text("go")
            holder.join()
        assert SegmentStore(tmp_path, key="k", prefix="seg").entries()[
            "held-1"
        ] == {"v": 1}

    def test_live_lock_raises_busy_and_maybe_compact_declines(self, tmp_path):
        store = SegmentStore(
            tmp_path, key="k", prefix="seg", compact_ratio=0.0
        )
        for i in range(4):
            store.append("n", {"i": i})  # rewrites: all-but-one dead
        store.close()
        lock = tmp_path / "seg.compact.lock"
        lock.write_text(str(os.getpid()))  # a live (this!) process owns it
        with pytest.raises(CompactionBusy):
            store.compact()
        with recording() as rec:
            assert store.maybe_compact() is None
        assert rec.counters.get("core.store.compact_busy") == 1
        assert lock.read_text() == str(os.getpid())  # not stolen

    def test_stale_lock_is_broken_and_compaction_proceeds(self, tmp_path):
        store = SegmentStore(tmp_path, key="k", prefix="seg")
        store.append("a", 1)
        store.close()
        # A dead pid: spawn-and-join a child so the pid is certainly gone.
        child = multiprocessing.Process(target=int)
        child.start()
        child.join()
        lock = tmp_path / "seg.compact.lock"
        lock.write_text(str(child.pid))
        stats = store.compact()
        assert stats.entries == 1
        assert not lock.exists()


# ----------------------------------------------------------------------
# Compaction: merge, quarantine, prune — with accurate counts
# ----------------------------------------------------------------------

class TestCompaction:
    def test_merges_blobs_folds_legacy_and_counts(self, tmp_path):
        store = SegmentStore(tmp_path, key="k", prefix="seg")
        store.append("a", 1)
        store.close()
        other = SegmentStore(tmp_path, key="k", prefix="seg")
        other.append("b", 2)
        other.append("a", 10)  # later blob wins on merge
        other.close()
        with recording() as rec:
            stats = store.compact(extra_entries={"legacy": 9, "a": 0})
        assert isinstance(stats, CompactionStats)
        assert stats.entries == 3  # a, b, legacy
        assert stats.segments_merged == 2
        assert stats.legacy_folded == 2
        assert stats.quarantined == 0
        assert rec.counters.get("core.store.compactions") == 1
        merged = SegmentStore(tmp_path, key="k", prefix="seg").entries()
        # Segment entries shadow legacy extras; the later blob wins.
        assert merged == {"a": 10, "b": 2, "legacy": 9}
        assert len(list(tmp_path.glob("seg-*.seg"))) == 1

    def test_dirty_blob_is_quarantined_not_deleted(self, tmp_path):
        store = SegmentStore(tmp_path, key="k", prefix="seg")
        store.append("good", 1)
        blob = store.segment_path()
        store.close()
        raw = blob.read_bytes()
        blob.write_bytes(raw + b"E0000000000000000 {\"torn\n")
        fresh = SegmentStore(tmp_path, key="k", prefix="seg")
        stats = fresh.compact()
        assert stats.quarantined == 1
        assert stats.entries == 1
        assert blob.with_suffix(".corrupt").exists()
        assert fresh.entries() == {"good": 1}

    def test_mid_blob_torn_line_is_quarantined_on_compact(self, tmp_path):
        """Damage classified *torn* (body no longer parses) on a line in
        the middle of a blob — later frames still commit — must keep the
        evidence aside on compact, same as corrupt damage."""
        store = SegmentStore(tmp_path, key="k", prefix="seg")
        store.append("a", 1)
        store.append("b", 2)
        blob = store.segment_path()
        store.close()
        raw = bytearray(blob.read_bytes())
        header_len = raw.index(b"\n") + 1
        raw[header_len + 18] ^= 0xFF  # first byte of S(a)'s body: "{"
        blob.write_bytes(bytes(raw))
        fresh = SegmentStore(tmp_path, key="k", prefix="seg")
        with recording() as rec:
            assert fresh.entries() == {"b": 2}
            stats = fresh.compact()
        assert rec.counters.get("core.store.torn") == 1
        assert stats.quarantined == 1
        assert stats.entries == 1
        assert blob.with_suffix(".corrupt").exists()
        assert SegmentStore(tmp_path, key="k", prefix="seg").entries() == {
            "b": 2
        }

    def test_age_prunes_foreign_and_debris_never_current(self, tmp_path):
        import time as _time

        store = SegmentStore(tmp_path, key="mine", prefix="seg")
        store.append("keep", 1)
        store.close()
        foreign = SegmentStore(tmp_path, key="theirs", prefix="seg")
        foreign.append("x", 2)
        foreign_blob = foreign.segment_path()
        foreign.close()
        debris = tmp_path / "dead.tmp.99"
        debris.write_text("{")
        old = _time.time() - 90 * 86400
        for path in list(tmp_path.iterdir()):
            os.utime(path, (old, old))
        stats = store.compact(max_age_days=30)
        assert stats.pruned == 2  # the foreign blob + the debris file
        assert not debris.exists()
        assert not foreign_blob.exists()
        assert SegmentStore(tmp_path, key="mine", prefix="seg").entries() == {
            "keep": 1
        }


class TestAutoCompaction:
    def test_fresh_store_is_below_threshold(self, tmp_path):
        store = SegmentStore(tmp_path, key="k", prefix="seg")
        store.append("a", 1)
        assert store.dead_ratio() < 0.6
        assert store.maybe_compact() is None

    def test_rewrite_churn_trips_the_threshold(self, tmp_path):
        store = SegmentStore(tmp_path, key="k", prefix="seg")
        for i in range(20):
            store.append("hot", {"round": i, "pad": "x" * 64})
        dead, total = store.dead_bytes()
        assert dead / total > 0.6  # 19 of 20 writes are superseded
        with recording() as rec:
            stats = store.maybe_compact()
        assert isinstance(stats, CompactionStats)
        assert stats.entries == 1
        assert rec.counters.get("core.store.auto_compactions") == 1
        assert rec.counters.get("core.store.compactions") == 1
        # The rewrite reclaimed the churn: next check is a no-op.
        assert store.dead_ratio() < 0.6
        assert store.maybe_compact() is None
        assert SegmentStore(tmp_path, key="k", prefix="seg").entries() == {
            "hot": {"round": 19, "pad": "x" * 64}
        }

    def test_compact_ratio_none_disables(self, tmp_path):
        store = SegmentStore(tmp_path, key="k", prefix="seg",
                             compact_ratio=None)
        for i in range(20):
            store.append("hot", i)
        with recording() as rec:
            assert store.maybe_compact() is None
        assert rec.counters.get("core.store.auto_compactions") == 0

    def test_memo_cache_auto_compacts(self, tmp_path):
        from repro.core.memo import MemoCache

        cache = MemoCache(directory=tmp_path, compact_ratio=0.5)
        key = cache.key("unit.fn", {"p": 1})
        for i in range(20):
            cache.put(key, {"value": i, "pad": "y" * 64})
        with recording() as rec:
            stats = cache.maybe_compact()
        assert stats is not None
        assert rec.counters.get("core.store.auto_compactions") == 1
        assert cache.get(key)["value"] == 19
        assert cache.maybe_compact() is None
        cache.close()
