"""Tests for the multicore sharded sweep path (PR 8).

The contract under test is bit-identity: a sweep sharded across worker
processes — each memory-mapping the same on-disk trace artifact — must
produce exactly the rows, stats, timings, and published counters of the
single-process batched engine, which PR 6 already pinned to the serial
engine.  Shard planning, fault containment, and the executor seam ride
the same PR 5 resilience semantics as per-config parallelism.

Pool-spinning tests are kept to a minimum (one happy path, two fault
paths, one workload fan-out) because process pools dominate test wall
time; the bit-identity property itself is exercised in-process via
:class:`ShardEvaluator`, which is exactly what the workers run.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, SocConfig, soc_cache_label
from repro.core.resilience import ResilientMap, RetryPolicy
from repro.core.runner import ConfigSweep
from repro.obs import get_recorder, recording
from repro.sim.artifact import TraceArtifact
from repro.sim.batch import (
    ShardEvaluator,
    plan_shards,
    publish_sweep_plan,
    sweep_batch,
)
from repro.sim.cache import CacheHierarchy
from repro.sim.timing import TimingSimulator
from repro.sim.trace import MemoryTrace
from repro.validate import strict_mode

# L1 geometries deliberately collide across some SoCs so shard planning
# has real sharing groups to preserve.
_L1S = [
    CacheConfig(size_bytes=512, associativity=1),
    CacheConfig(size_bytes=1024, associativity=2),
    CacheConfig(size_bytes=2048, associativity=4),
]
_L2S = [
    CacheConfig(size_bytes=2048, associativity=2),
    CacheConfig(size_bytes=4096, associativity=4),
    CacheConfig(size_bytes=8192, associativity=8),
]
_GRID = [
    SocConfig(l1=l1, l2=l2) for l1 in _L1S for l2 in _L2S
    if l2.size_bytes > l1.size_bytes
]


def make_trace(length: int = 600, seed: int = 0) -> MemoryTrace:
    rng = np.random.default_rng(seed)
    return MemoryTrace(
        addresses=rng.integers(0, 1 << 14, length, dtype=np.uint64),
        is_write=rng.random(length) < 0.3,
    )


def make_saved_artifact(tmp_path, seed: int = 0) -> TraceArtifact:
    artifact = TraceArtifact.from_trace(make_trace(seed=seed), workload="unit")
    artifact.save(tmp_path / "unit.trace")
    return artifact


class TestPlanShards:
    def items(self, socs):
        return [(i, soc_cache_label(s), s) for i, s in enumerate(socs)]

    def test_covers_every_item_exactly_once(self):
        items = self.items(_GRID)
        for jobs in (1, 2, 3, 5, 64):
            shards = plan_shards(items, jobs)
            flat = sorted(item[0] for shard in shards for item in shard)
            assert flat == list(range(len(items)))

    def test_deterministic(self):
        items = self.items(_GRID)
        assert plan_shards(items, 3) == plan_shards(items, 3)

    def test_groups_by_l1_geometry(self):
        # With as many slots as distinct L1s, each shard holds exactly
        # one L1 group, so no worker duplicates an L1 pass.
        items = self.items(_GRID)
        shards = plan_shards(items, len(_L1S))
        assert len(shards) == len(_L1S)
        for shard in shards:
            keys = {(item[2].l1.size_bytes, item[2].l1.associativity)
                    for item in shard}
            assert len(keys) == 1

    def test_splits_largest_groups_for_extra_slots(self):
        items = self.items(_GRID)
        shards = plan_shards(items, len(_L1S) + 2)
        assert len(shards) == len(_L1S) + 2
        flat = sorted(item[0] for shard in shards for item in shard)
        assert flat == list(range(len(items)))

    def test_never_exceeds_item_count(self):
        items = self.items(_GRID[:2])
        assert len(plan_shards(items, 16)) <= 2
        assert plan_shards([], 4) == []

    def test_single_job_single_shard_when_one_group(self):
        socs = [s for s in _GRID if s.l1 == _L1S[0]]
        shards = plan_shards(self.items(socs), 1)
        assert len(shards) == 1


class TestShardBitIdentity:
    """Sharded evaluation == single-process batched == serial, on the
    full stats and timing objects, for arbitrary traces and plans."""

    @settings(max_examples=25)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        length=st.integers(min_value=16, max_value=400),
        write_pct=st.floats(min_value=0.0, max_value=1.0),
        n_socs=st.integers(min_value=1, max_value=len(_GRID)),
        jobs=st.integers(min_value=1, max_value=6),
    )
    def test_sharded_equals_batched_equals_serial(
        self, seed, length, write_pct, n_socs, jobs
    ):
        rng = np.random.default_rng(seed)
        trace = MemoryTrace(
            addresses=rng.integers(0, 1 << 13, length, dtype=np.uint64),
            is_write=rng.random(length) < write_pct,
        )
        socs = _GRID[:n_socs]

        serial_stats = [
            CacheHierarchy(soc).replay_fast(trace) for soc in socs
        ]
        serial_timings = [
            TimingSimulator(soc).replay_fast(trace) for soc in socs
        ]
        batched_stats, batched_timings = sweep_batch(trace, socs)

        items = [(i, soc_cache_label(s), s) for i, s in enumerate(socs)]
        shard_stats = [None] * len(socs)
        shard_timings = [None] * len(socs)
        for shard in plan_shards(items, jobs):
            evaluator = ShardEvaluator(trace)
            stats, timings = evaluator.evaluate([it[2] for it in shard])
            for (index, _, _), s, t in zip(shard, stats, timings):
                shard_stats[index] = s
                shard_timings[index] = t

        assert batched_stats == serial_stats
        assert batched_timings == serial_timings
        assert shard_stats == serial_stats
        assert shard_timings == serial_timings

    def test_counter_parity_with_publish_sweep_plan(self):
        """Worker-published per-config counters plus the parent's one
        ``publish_sweep_plan`` call reproduce ``sweep_batch``'s registry
        exactly — the counter-ownership split behind sharded parity.
        The trace is artifact-backed, as in production: its run columns
        arrive prepopulated, so every engine records a shared-trace hit,
        matching the parent's ``shared=True`` plan record."""
        trace = TraceArtifact.from_trace(make_trace(), workload="unit").trace()
        socs = [s for s in _GRID if s.l2 == _L2S[2]]  # shared L1 group
        socs = socs + [SocConfig(l1=_L1S[0], l2=_L2S[1])]
        with recording() as batched_obs:
            sweep_batch(trace, socs)
        batched = batched_obs.counters.as_dict()

        items = [(i, soc_cache_label(s), s) for i, s in enumerate(socs)]
        with recording() as sharded_obs:
            num_runs = None
            for shard in plan_shards(items, 2):
                evaluator = ShardEvaluator(trace)
                evaluator.evaluate([it[2] for it in shard])
                num_runs = evaluator.outcomes.num_runs
            publish_sweep_plan(get_recorder(), len(socs), num_runs)
        sharded = sharded_obs.counters.as_dict()
        # Strict-mode validate.* counters tally how many times a check
        # *ran*, which scales with the number of evaluator instances —
        # an artifact of call structure, not of results.
        def strip(counters):
            return {
                k: v for k, v in counters.items()
                if not k.startswith("validate.")
            }

        assert strip(sharded) == strip(batched)


class TestParallelConfigSweep:
    def socs(self):
        return _GRID[:4]

    def test_parallel_rows_and_counters_match_batched(self, tmp_path):
        artifact = make_saved_artifact(tmp_path)
        socs = self.socs()
        with recording() as one_obs:
            one = ConfigSweep(artifact).evaluate(socs, batch=True, jobs=1)
        with recording() as many_obs:
            many = ConfigSweep(artifact).evaluate(socs, batch=True, jobs=2)
        assert many.batched
        assert many.rows == one.rows
        serial = ConfigSweep(artifact).evaluate(socs, batch=False)
        assert many.rows == serial.rows

        # validate.* strict-check counters scale with how many evaluator
        # instances ran the checks, not with results — skip them too.
        skip = ("sim.artifact.", "core.runner.", "core.resilience.",
                "validate.")
        def published(obs):
            return {
                k: v for k, v in obs.counters.as_dict().items()
                if not k.startswith(skip)
            }
        assert published(many_obs) == published(one_obs)
        many_counters = many_obs.counters.as_dict()
        assert many_counters["core.runner.parallel_batches"] == 1
        assert many_counters["core.runner.pool_workers"] == 2

    def test_shard_worker_killed_once_is_retried(
        self, tmp_path, monkeypatch
    ):
        """A shard worker killed mid-pass is retried on a fresh worker
        and the final rows are identical — the strict-safe containment
        contract (CI runs this under ``REPRO_STRICT=1``)."""
        artifact = make_saved_artifact(tmp_path)
        socs = self.socs()
        expected = ConfigSweep(artifact).evaluate(socs, batch=True, jobs=1)
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps({"faults": {"shard-0": ["kill"]}}))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan))
        result = ConfigSweep(artifact).evaluate(
            socs, batch=True, jobs=2,
            retry_policy=RetryPolicy(
                max_attempts=3, backoff_base_s=0.0, jitter=0.0
            ),
        )
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert result.rows == expected.rows
        assert result.batched
        assert not result.failures

    def test_shard_exhaustion_falls_back_contained(
        self, tmp_path, monkeypatch
    ):
        """A shard that keeps failing is quarantined and its configs
        re-run through the contained serial path — no row is lost and
        the output stays identical.  Quarantine is the non-strict
        contract, hence ``strict_mode(False)``."""
        artifact = make_saved_artifact(tmp_path)
        socs = self.socs()
        expected = ConfigSweep(artifact).evaluate(socs, batch=True, jobs=1)
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps({"faults": {"shard-0": ["raise"] * 6}}))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan))
        with strict_mode(False), recording() as obs:
            result = ConfigSweep(artifact).evaluate(
                socs, batch=True, jobs=2,
                retry_policy=RetryPolicy(
                    max_attempts=2, backoff_base_s=0.0, jitter=0.0
                ),
            )
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert result.rows == expected.rows
        assert not result.batched  # fallback path is the serial engine
        assert not result.failures  # every config still produced a row
        counters = obs.counters.as_dict()
        assert counters["core.runner.shard_fallbacks"] == 1

    def test_checkpoint_resume_composes_with_shards(self, tmp_path):
        artifact = make_saved_artifact(tmp_path)
        socs = self.socs()
        journal = tmp_path / "sweep.jsonl"
        full = ConfigSweep(artifact).evaluate(
            socs, batch=True, jobs=2, checkpoint=journal
        )
        with recording() as obs:
            resumed = ConfigSweep(artifact).evaluate(
                socs, batch=True, jobs=2, checkpoint=journal, resume=True
            )
        assert resumed.rows == full.rows
        counters = obs.counters.as_dict()
        assert counters["core.resilience.resumed"] == len(socs)
        assert "core.runner.parallel_batches" not in counters


class TestPoolFactorySeam:
    def test_custom_executor_drives_the_same_semantics(self):
        created = []

        def factory(mapper):
            assert mapper.jobs == 2
            pool = ThreadPoolExecutor(max_workers=mapper.jobs)
            created.append(pool)
            return pool

        mapper = ResilientMap(
            fn=lambda x: x * x,
            items=[1, 2, 3],
            names=["a", "b", "c"],
            policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0, jitter=0.0),
            jobs=2,
            pool_factory=factory,
        )
        results, failures = mapper.run()
        assert results == [1, 4, 9]
        assert not failures
        assert len(created) == 1


class TestInnerJobsAllocation:
    """``--workload all --jobs N`` must not idle surplus cores."""

    def test_surplus_jobs_spread_deterministically(self):
        from repro.analysis.cachesweep import plan_inner_jobs

        assert plan_inner_jobs(8, 3) == [3, 3, 2]
        assert plan_inner_jobs(9, 3) == [3, 3, 3]
        assert plan_inner_jobs(3, 3) == [1, 1, 1]
        assert plan_inner_jobs(2, 4) == [1, 1, 1, 1]
        assert plan_inner_jobs(1, 1) == [1]
        assert plan_inner_jobs(7, 2) == [4, 3]

    def test_budget_is_used_never_exceeded_by_more_than_rounding(self):
        from repro.analysis.cachesweep import plan_inner_jobs

        for jobs in range(1, 33):
            for n in range(1, 9):
                plan = plan_inner_jobs(jobs, n)
                assert len(plan) == n
                assert all(inner >= 1 for inner in plan)
                assert sum(plan) == max(jobs, n)
                # Deterministic remainder spread: non-increasing by index.
                assert plan == sorted(plan, reverse=True)

    def test_fanout_jobs_carry_allocation_to_workers(self, monkeypatch):
        """The dispatched job tuples carry the per-workload inner-jobs
        split — the regression for the hardcoded ``inner_jobs=1``."""
        import repro.core.resilience as resilience
        from repro.analysis.cachesweep import sweep_all

        captured = {}

        class _CaptureMap:
            def __init__(self, fn, items, names=None, **kwargs):
                captured["items"] = list(items)
                captured["jobs"] = kwargs.get("jobs")
                self._names = list(names)

            def run(self):
                return [None] * len(self._names), []

        monkeypatch.setattr(resilience, "ResilientMap", _CaptureMap)
        workloads = [
            "tensorflow.gemm_packed",
            "tensorflow.gemm_unpacked",
            "chrome.compositing_tiled",
        ]
        sweep_all(workloads=workloads, socs=_GRID[:1], jobs=8)
        assert captured["jobs"] == 3  # outer fan-out: one per workload
        assert [item[2] for item in captured["items"]] == [3, 3, 2]
        assert [item[0] for item in captured["items"]] == workloads


class TestSweepAllFanout:
    def test_parallel_workloads_match_serial(self, tmp_path):
        from repro.analysis.cachesweep import sweep_all
        from repro.sim.artifact import TraceStore

        workloads = ["tensorflow.gemm_packed", "chrome.compositing_tiled"]
        socs = _GRID[:2]
        serial = sweep_all(
            workloads=workloads, socs=socs,
            store=TraceStore(directory=tmp_path / "a"), jobs=1,
        )
        with recording() as obs:
            parallel = sweep_all(
                workloads=workloads, socs=socs,
                store=TraceStore(directory=tmp_path / "b"), jobs=2,
            )
        assert list(parallel) == workloads
        for name in workloads:
            assert parallel[name]["rows"] == serial[name]["rows"]
            assert parallel[name]["artifact"] == serial[name]["artifact"]
        counters = obs.counters.as_dict()
        assert counters["analysis.cachesweep.parallel_workloads"] == len(
            workloads
        )
