"""Unit tests for the offload engine."""

import pytest

from repro.core.target import PimTarget
from repro.sim.profile import KernelProfile

MB = 1024 * 1024


def target(invocations=1):
    profile = KernelProfile.streaming("k", 8 * MB, 8 * MB, ops_per_byte=0.3,
                                      instruction_overhead=0.1, simd_fraction=0.9)
    return PimTarget("k", profile, accelerator_key="texture_tiling",
                     invocations=invocations, workload="test")


class TestCompare:
    def test_three_machines(self, engine):
        c = engine.compare(target())
        assert c.cpu.machine == "CPU-Only"
        assert c.pim_core.machine == "PIM-Core"
        assert c.pim_acc.machine == "PIM-Acc"

    def test_normalized_energy_baseline_is_one(self, engine):
        c = engine.compare(target())
        norm = c.normalized_energy()
        assert norm["CPU-Only"] == 1.0
        assert 0.0 < norm["PIM-Acc"] <= norm["PIM-Core"] + 1e-9

    def test_normalized_runtime_baseline_is_one(self, engine):
        norm = engine.compare(target()).normalized_runtime()
        assert norm["CPU-Only"] == 1.0

    def test_speedup_consistency(self, engine):
        c = engine.compare(target())
        assert c.pim_core_speedup == pytest.approx(
            c.cpu.time_s / c.pim_core.time_s
        )
        assert c.pim_acc_energy_reduction == pytest.approx(
            1.0 - c.pim_acc.energy_j / c.cpu.energy_j
        )


class TestOverheads:
    def test_pim_includes_coherence_overhead(self, engine):
        t = target()
        raw = engine.pim_core_model.run(t.profile)
        charged = engine.run_pim_core(t)
        assert charged.time_s > raw.time_s
        assert charged.energy_j > raw.energy_j

    def test_more_invocations_more_launch_overhead(self, engine):
        few = engine.run_pim_acc(target(invocations=1))
        many = engine.run_pim_acc(target(invocations=1000))
        assert many.time_s > few.time_s

    def test_cpu_has_no_offload_overhead(self, engine):
        t = target()
        direct = engine.cpu_model.run(t.profile)
        via_engine = engine.run_cpu(t)
        assert via_engine.time_s == pytest.approx(direct.time_s)
        assert via_engine.energy_j == pytest.approx(direct.energy_j)

    def test_overhead_charged_to_interconnect(self, engine):
        t = target()
        raw = engine.pim_acc_model.run(t.profile)
        charged = engine.run_pim_acc(t)
        assert charged.energy.interconnect > raw.energy.interconnect
        assert charged.energy.pim_memory == pytest.approx(raw.energy.pim_memory)
