"""Tests for :class:`repro.core.runner.ConfigSweep` and its wiring.

The sweep executor is the composition point of this PR: one shared
trace artifact, N geometries, batched or serial engines, resilience and
checkpointing from PR 5, memoization from PR 1.  The core contract is
path-independence — batched, serial, parallel, and resumed sweeps all
produce identical rows — plus fault containment that never costs the
shared trace.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.config import CacheConfig, SocConfig, soc_cache_label
from repro.core.offload import measured_profile
from repro.core.resilience import RetryPolicy
from repro.core.runner import ConfigSweep
from repro.obs import recording
from repro.sim.artifact import TraceArtifact, TraceStore
from repro.sim.cache import CacheHierarchy
from repro.sim.profile import KernelProfile
from repro.sim.timing import TimingParameters
from repro.sim.trace import MemoryTrace
from repro.validate import strict_mode


def small_grid() -> list[SocConfig]:
    return [
        SocConfig(
            l1=CacheConfig(size_bytes=1024, associativity=2),
            l2=CacheConfig(size_bytes=4096, associativity=4),
        ),
        SocConfig(
            l1=CacheConfig(size_bytes=2048, associativity=4),
            l2=CacheConfig(size_bytes=8192, associativity=8),
        ),
        SocConfig(
            l1=CacheConfig(size_bytes=512, associativity=1),
            l2=CacheConfig(size_bytes=2048, associativity=2),
        ),
    ]


def make_artifact(tmp_path=None, seed: int = 0) -> TraceArtifact:
    rng = np.random.default_rng(seed)
    trace = MemoryTrace(
        addresses=rng.integers(0, 1 << 15, 800, dtype=np.uint64),
        is_write=rng.random(800) < 0.3,
    )
    artifact = TraceArtifact.from_trace(trace, workload="unit")
    if tmp_path is not None:
        artifact.save(tmp_path / "unit.trace")
    return artifact


class TestConfigSweep:
    def test_batched_and_serial_rows_identical(self):
        artifact = make_artifact()
        socs = small_grid()
        batched = ConfigSweep(artifact).evaluate(socs, batch=True)
        serial = ConfigSweep(artifact).evaluate(socs, batch=False)
        assert batched.batched and not serial.batched
        assert batched.rows == serial.rows
        assert [r["config"] for r in batched.rows] == [
            soc_cache_label(s) for s in socs
        ]

    def test_parallel_serial_rows_identical(self, tmp_path):
        artifact = make_artifact(tmp_path)
        socs = small_grid()
        expected = ConfigSweep(artifact).evaluate(socs, batch=False)
        parallel = ConfigSweep(artifact).evaluate(socs, batch=False, jobs=2)
        assert parallel.rows == expected.rows

    def test_parallel_autosaves_in_memory_artifact(self, tmp_path):
        """An in-memory artifact no longer blocks ``jobs > 1`` — the sweep
        saves it into ``trace_dir`` so workers can memory-map it, and the
        rows stay identical to a single-process run."""
        artifact = make_artifact()  # never saved
        socs = small_grid()
        expected = ConfigSweep(make_artifact()).evaluate(socs, batch=False)
        with recording() as obs:
            result = ConfigSweep(artifact, trace_dir=tmp_path).evaluate(
                socs, batch=False, jobs=2
            )
        assert result.rows == expected.rows
        assert artifact.path is not None
        assert artifact.path.parent == tmp_path
        assert obs.counters.as_dict()["sim.artifact.autosaves"] == 1

    def test_duplicate_geometries_rejected(self):
        artifact = make_artifact()
        soc = small_grid()[0]
        with pytest.raises(ValueError, match="duplicate"):
            ConfigSweep(artifact).evaluate([soc, soc])

    def test_rows_are_json_able_and_carry_mpki(self):
        artifact = make_artifact()
        result = ConfigSweep(artifact).evaluate(small_grid()[:1])
        row = json.loads(json.dumps(result.rows[0]))
        assert row["accesses"] == artifact.num_accesses
        assert row["l1_misses"] > 0
        instructions = row["accesses"] * 2.0
        assert row["llc_mpki"] == pytest.approx(
            row["llc_misses"] / (instructions / 1000.0)
        )
        assert row["pim_candidate"] == (row["llc_mpki"] > 10.0)

    def test_checkpoint_resume_is_bit_identical(self, tmp_path):
        artifact = make_artifact(tmp_path)
        socs = small_grid()
        journal = tmp_path / "sweep.jsonl"
        full = ConfigSweep(artifact).evaluate(socs, checkpoint=journal)
        # A fresh sweep with resume reloads every row without replaying.
        with recording() as obs:
            resumed = ConfigSweep(artifact).evaluate(
                socs, checkpoint=journal, resume=True
            )
        assert resumed.rows == full.rows
        counters = obs.counters.as_dict()
        assert counters["core.resilience.resumed"] == len(socs)
        assert "sim.cache.replays" not in counters

    def test_checkpoint_keyed_by_artifact_content(self, tmp_path):
        socs = small_grid()[:2]
        journal = tmp_path / "sweep.jsonl"
        first = make_artifact(seed=1)
        ConfigSweep(first).evaluate(socs, checkpoint=journal)
        # A different trace must not resume from the first one's rows.
        other = make_artifact(seed=2)
        resumed = ConfigSweep(other).evaluate(
            socs, checkpoint=journal, resume=True
        )
        expected = ConfigSweep(make_artifact(seed=2)).evaluate(socs)
        assert resumed.rows == expected.rows

    def test_fault_quarantines_config_not_trace(self, tmp_path, monkeypatch):
        """An injected per-config fault degrades the batch to the serial
        path, quarantines only that config, and keeps the shared trace:
        the surviving rows equal an undisturbed sweep's.  Quarantine is
        the non-strict contract, so the test pins ``strict_mode(False)``
        (under strict, exhaustion raises instead — by design)."""
        artifact = make_artifact()
        socs = small_grid()
        bad = soc_cache_label(socs[1])
        plan = tmp_path / "faults.json"
        plan.write_text(
            json.dumps({"faults": {bad: ["raise", "raise", "raise", "raise"]}})
        )
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan))
        with strict_mode(False), recording() as obs:
            result = ConfigSweep(artifact).evaluate(
                socs, batch=True, retry_policy=RetryPolicy(
                    max_attempts=2, backoff_base_s=0.0, jitter=0.0
                )
            )
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        assert result.degraded
        assert [f.target for f in result.failures] == [bad]
        assert not result.batched  # fell back to the contained path
        clean = ConfigSweep(make_artifact()).evaluate(
            [socs[0], socs[2]], batch=False
        )
        assert result.rows == clean.rows
        assert obs.counters.as_dict()["core.runner.batch_fallbacks"] == 1

    def test_fault_without_policy_raises(self, tmp_path, monkeypatch):
        artifact = make_artifact()
        socs = small_grid()[:2]
        bad = soc_cache_label(socs[0])
        plan = tmp_path / "faults.json"
        plan.write_text(json.dumps({"faults": {bad: ["raise"]}}))
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(plan))
        with pytest.raises(Exception, match="injected"):
            ConfigSweep(artifact).evaluate(socs, batch=True)

    def test_sweep_counters_published(self):
        artifact = make_artifact()
        with recording() as obs:
            ConfigSweep(artifact).evaluate(small_grid())
        counters = obs.counters.as_dict()
        assert counters["core.runner.config_sweeps"] == 1
        assert counters["core.runner.config_sweep_points"] == 3
        assert counters["sim.replay_batch.configs"] == 6  # cache + timing


class TestCacheSweepAnalysis:
    def test_run_sweep_shares_one_artifact(self, tmp_path):
        from repro.analysis.cachesweep import run_sweep

        store = TraceStore(directory=tmp_path)
        socs = small_grid()
        with recording() as obs:
            first = run_sweep("tensorflow.gemm_packed", socs=socs, store=store)
            second = run_sweep("tensorflow.gemm_packed", socs=socs, store=store)
        counters = obs.counters.as_dict()
        assert counters["sim.artifact.misses"] == 1  # traced exactly once
        assert counters["sim.artifact.hits"] == 1
        assert first["rows"] == second["rows"]
        assert first["batched"]

    def test_memo_cache_keyed_on_artifact_hash(self, tmp_path):
        from repro.analysis.cachesweep import run_sweep
        from repro.core.memo import MemoCache

        store = TraceStore(directory=tmp_path / "traces")
        cache = MemoCache(directory=tmp_path / "memo")
        socs = small_grid()[:2]
        first = run_sweep(
            "chrome.compositing_tiled", socs=socs, store=store, cache=cache
        )
        with recording() as obs:
            second = run_sweep(
                "chrome.compositing_tiled", socs=socs, store=store, cache=cache
            )
        assert second == first
        counters = obs.counters.as_dict()
        assert counters["core.memo.hits"] == 1
        assert "sim.cache.replays" not in counters  # no replay on a hit
        # The memo key embeds the artifact hash: same workload name with
        # different trace content must miss.
        key_config_hit = cache.key(
            "cachesweep.chrome.compositing_tiled",
            {
                "artifact": first["artifact"],
                "configs": [soc_cache_label(s) for s in socs],
                "timing": {},
                "instructions_per_access": 2.0,
            },
        )
        key_config_other = cache.key(
            "cachesweep.chrome.compositing_tiled",
            {
                "artifact": "different-hash",
                "configs": [soc_cache_label(s) for s in socs],
                "timing": {},
                "instructions_per_access": 2.0,
            },
        )
        assert key_config_hit != key_config_other

    def test_unknown_workload_rejected(self):
        from repro.analysis.cachesweep import run_sweep

        with pytest.raises(ValueError, match="unknown sweep workload"):
            run_sweep("no.such.workload")

    def test_locality_robust_across_geometries(self, tmp_path):
        from repro.analysis.sensitivity import locality_robust_across_geometries

        store = TraceStore(directory=tmp_path)
        verdicts = locality_robust_across_geometries(
            socs=small_grid(), store=store
        )
        assert [v["optimized"] for v in verdicts] == [
            "tensorflow.gemm_packed",
            "chrome.compositing_tiled",
        ]
        for verdict in verdicts:
            assert verdict["robust"], verdict
            assert len(verdict["points"]) == 3


class TestMeasuredProfile:
    def profile(self, **overrides) -> KernelProfile:
        base = dict(
            name="unit",
            instructions=1000.0,
            mem_instructions=400.0,
            alu_ops=500.0,
            l1_misses=10.0,
            llc_misses=5.0,
            dram_bytes=320.0,
        )
        base.update(overrides)
        return KernelProfile(**base)

    def stats(self):
        artifact = make_artifact()
        return CacheHierarchy(small_grid()[0]).replay_fast(artifact.trace())

    def test_grafts_measured_memory_fields(self):
        stats = self.stats()
        measured = measured_profile(self.profile(), stats)
        assert measured.l1_misses == stats.l1.misses
        assert measured.llc_misses == stats.llc.misses
        assert measured.dram_bytes == stats.dram_bytes
        assert measured.instructions == 1000.0  # compute side untouched
        assert measured.alu_ops == 500.0

    def test_default_pim_bytes_follows_measured_traffic(self):
        stats = self.stats()
        measured = measured_profile(self.profile(), stats)
        assert measured.pim_bytes == stats.dram_bytes

    def test_overridden_pim_bytes_preserved(self):
        stats = self.stats()
        measured = measured_profile(self.profile(pim_bytes=64.0), stats)
        assert measured.pim_bytes == 64.0
