"""Unit tests for the experiment runner."""

import pytest

from repro.core.runner import ExperimentRunner, SweepResult
from repro.core.target import PimTarget
from repro.sim.profile import KernelProfile

MB = 1024 * 1024


def targets():
    out = []
    for i, name in enumerate(("a", "b", "c")):
        profile = KernelProfile.streaming(
            name, (8 + 4 * i) * MB, (8 + 4 * i) * MB,
            ops_per_byte=0.2 + 0.1 * i, instruction_overhead=0.1,
            simd_fraction=0.9,
        )
        out.append(PimTarget(name, profile, accelerator_key="texture_tiling",
                             workload="test"))
    return out


class TestRunner:
    def test_evaluates_all_targets(self):
        result = ExperimentRunner().evaluate(targets())
        assert result.names == ["a", "b", "c"]

    def test_by_name(self):
        result = ExperimentRunner().evaluate(targets())
        assert result.by_name("b").target.name == "b"
        with pytest.raises(KeyError):
            result.by_name("zzz")

    def test_by_name_error_lists_available_targets(self):
        result = ExperimentRunner().evaluate(targets())
        with pytest.raises(KeyError, match="a, b, c"):
            result.by_name("zzz")

    def test_by_name_index_follows_mutation(self):
        result = ExperimentRunner().evaluate(targets())
        assert result.by_name("a").target.name == "a"
        extra = ExperimentRunner().evaluate(targets()[:1]).comparisons[0]
        renamed = ExperimentRunner().evaluate(
            [PimTarget("d", extra.target.profile, "texture_tiling")]
        ).comparisons[0]
        result.comparisons.append(renamed)
        assert result.by_name("d").target.name == "d"

    def test_parallel_evaluate_matches_serial(self):
        serial = ExperimentRunner().evaluate(targets())
        parallel = ExperimentRunner().evaluate(targets(), jobs=2)
        assert parallel.names == serial.names
        assert parallel.rows() == serial.rows()

    def test_rows_schema(self):
        rows = ExperimentRunner().evaluate(targets()).rows()
        assert len(rows) == 3
        for row in rows:
            assert row["energy_cpu"] == 1.0
            assert row["runtime_cpu"] == 1.0
            assert 0 < row["energy_pim_acc"] < 1.5
            assert row["speedup_pim_acc"] > 0

    def test_mean_matches_manual_average(self):
        result = ExperimentRunner().evaluate(targets())
        manual = sum(c.pim_acc_energy_reduction for c in result.comparisons) / 3
        assert result.mean_pim_acc_energy_reduction == pytest.approx(manual)

    def test_max_ge_mean(self):
        result = ExperimentRunner().evaluate(targets())
        assert result.max_pim_acc_speedup >= result.mean_pim_acc_speedup
        assert result.max_pim_core_energy_reduction >= result.mean_pim_core_energy_reduction

    def test_empty_sweep(self):
        empty = SweepResult()
        assert empty.mean_pim_core_speedup == 0.0


class TestTable1Rendering:
    def test_table1_rows_match_config(self):
        from repro.config import table1_rows

        rows = dict(table1_rows())
        assert "4 OoO cores, 8-wide issue" in rows["SoC"]
        assert "4-wide SIMD" in rows["PIM Core"]
        assert "256 GB/s" in rows["3D-Stacked Memory"]
        assert "FR-FCFS" in rows["Baseline Memory"]
