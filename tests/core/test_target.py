"""Unit tests for PIM targets and the Section 3.2 criteria."""

import pytest

from repro.core.target import (
    CandidateCriteria,
    CandidateEvaluation,
    PimTarget,
    evaluate_candidate,
    identify_pim_targets,
)
from repro.sim.profile import KernelProfile


def profile(mpki_target=30.0):
    instructions = 1e6
    llc_misses = mpki_target * instructions / 1000
    return KernelProfile(
        "k", instructions=instructions, mem_instructions=1e5, alu_ops=5e5,
        llc_misses=llc_misses, dram_bytes=llc_misses * 64,
    )


def evaluation(**overrides):
    defaults = dict(
        name="k",
        energy_share=0.25,
        movement_share_of_workload=0.20,
        mpki=30.0,
        movement_dominates_function=True,
        pim_speedup=1.5,
        area_fraction_of_vault=0.1,
    )
    defaults.update(overrides)
    return CandidateEvaluation(**defaults)


class TestPimTarget:
    def test_requires_known_accelerator(self):
        with pytest.raises(KeyError):
            PimTarget("k", profile(), accelerator_key="nonexistent")

    def test_requires_positive_invocations(self):
        with pytest.raises(ValueError):
            PimTarget("k", profile(), accelerator_key="texture_tiling",
                      invocations=0)

    def test_valid_target(self):
        t = PimTarget("k", profile(), accelerator_key="texture_tiling",
                      workload="chrome")
        assert t.workload == "chrome"


class TestCriteria:
    def test_good_candidate_passes(self):
        assert evaluation().is_pim_target

    def test_low_energy_share_fails(self):
        assert not evaluation(energy_share=0.01).is_candidate

    def test_low_movement_share_fails(self):
        assert not evaluation(movement_share_of_workload=0.001).is_candidate

    def test_mpki_threshold_is_strict(self):
        """The paper requires MPKI > 10 (not >=)."""
        assert not evaluation(mpki=10.0).is_candidate
        assert evaluation(mpki=10.01).is_candidate

    def test_movement_must_dominate_function(self):
        assert not evaluation(movement_dominates_function=False).is_candidate

    def test_slowdown_disqualifies(self):
        e = evaluation(pim_speedup=0.9)
        assert e.is_candidate
        assert not e.is_pim_target

    def test_area_budget_disqualifies(self):
        e = evaluation(area_fraction_of_vault=1.2)
        assert not e.fits_area_budget
        assert not e.is_pim_target

    def test_custom_criteria(self):
        strict = CandidateCriteria(min_energy_share=0.5)
        assert not evaluation(criteria=strict).is_candidate

    def test_identify_filters(self):
        evals = [evaluation(), evaluation(pim_speedup=0.5), evaluation(mpki=1.0)]
        assert len(identify_pim_targets(evals)) == 1


class TestEvaluateCandidate:
    def test_builds_from_measurements(self):
        e = evaluate_candidate(
            name="texture_tiling",
            profile=profile(mpki_target=25.0),
            energy_share=0.3,
            movement_share_of_workload=0.25,
            movement_fraction_of_function=0.84,
            pim_speedup=1.6,
            accelerator_key="texture_tiling",
        )
        assert e.is_pim_target
        assert e.mpki == pytest.approx(25.0)

    def test_movement_dominance_uses_half(self):
        e = evaluate_candidate(
            "k", profile(), 0.3, 0.25, movement_fraction_of_function=0.49,
            pim_speedup=1.5, accelerator_key="texture_tiling",
        )
        assert not e.movement_dominates_function

    def test_pim_core_area_when_no_accelerator(self):
        e = evaluate_candidate(
            "k", profile(), 0.3, 0.25, 0.9, 1.5, accelerator_key=None,
        )
        assert e.area_fraction_of_vault <= 0.10  # Cortex-R8 bound
