"""Unit tests for the hardware codec traffic/energy models."""

import pytest

from repro.workloads.vp9.hardware import (
    HardwareDecoderModel,
    HardwareEncoderModel,
    PimPlacement,
)

MB = 1024.0**2


@pytest.fixture(scope="module")
def dec4k():
    return HardwareDecoderModel(3840, 2160)


@pytest.fixture(scope="module")
def dec_hd():
    return HardwareDecoderModel(1280, 720)


@pytest.fixture(scope="module")
def enc_hd():
    return HardwareEncoderModel(1280, 720)


class TestTraffic:
    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            HardwareDecoderModel(0, 720)

    def test_reference_frame_dominates_decoder(self, dec4k, dec_hd):
        for model in (dec4k, dec_hd):
            t = model.traffic(compression=False)
            assert t.share("Reference Frame") > 0.5

    def test_hd_more_reference_heavy_than_4k(self, dec4k, dec_hd):
        """Paper Figure 12: 75.5% (HD) vs 59.6% (4K) reference share."""
        assert dec_hd.traffic(False).share("Reference Frame") > dec4k.traffic(
            False
        ).share("Reference Frame")

    def test_4k_moves_much_more_than_hd(self, dec4k, dec_hd):
        ratio = dec4k.traffic(False).total / dec_hd.traffic(False).total
        assert 4.0 <= ratio <= 8.0

    def test_compression_reduces_traffic(self, dec4k):
        assert dec4k.traffic(True).total < dec4k.traffic(False).total

    def test_compression_adds_metadata(self, dec4k):
        t = dec4k.traffic(True)
        assert t.components["Compression Info"] > 0
        assert "Compression Info" not in dec4k.traffic(False).components

    def test_reconstructed_frame_second_biggest(self, dec4k):
        """Paper: the reconstructed frame is the second contributor
        (22.2% of decoder traffic)."""
        t = dec4k.traffic(False)
        shares = {k: t.share(k) for k in t.components}
        ordered = sorted(shares, key=shares.get, reverse=True)
        assert ordered[0] == "Reference Frame"
        assert ordered[1] == "Reconstructed Frame"
        assert shares["Reconstructed Frame"] == pytest.approx(0.222, abs=0.06)

    def test_encoder_current_frame_share_grows_with_compression(self, enc_hd):
        """Paper Figure 16: the raw camera input cannot be compressed, so
        its share rises from 14.2% to 31.9%."""
        nocomp = enc_hd.traffic(False).share("Current Frame")
        comp = enc_hd.traffic(True).share("Current Frame")
        assert comp > nocomp
        assert nocomp == pytest.approx(0.142, abs=0.04)

    def test_megabytes_helper(self, dec_hd):
        mb = dec_hd.traffic(False).megabytes()
        assert sum(mb.values()) == pytest.approx(dec_hd.traffic(False).total / MB)


class TestPimSplit:
    def test_baseline_everything_offchip(self, dec4k):
        off, internal = dec4k.pim_traffic_split(False, PimPlacement.NONE)
        assert internal == 0.0
        assert off == pytest.approx(dec4k.traffic(False).total)

    def test_pim_moves_pixel_streams_in_memory(self, dec4k):
        off, internal = dec4k.pim_traffic_split(False, PimPlacement.PIM_ACC)
        t = dec4k.traffic(False)
        assert internal == pytest.approx(
            t.components["Reference Frame"] + t.components["Reconstructed Frame"]
        )
        assert off + internal == pytest.approx(t.total)


class TestEnergy:
    def test_movement_share_near_paper(self, dec4k, enc_hd):
        e = dec4k.energy(False, PimPlacement.NONE)
        share = (e.dram + e.memctrl + e.interconnect) / e.total
        assert share == pytest.approx(0.692, abs=0.08)
        e = enc_hd.energy(False, PimPlacement.NONE)
        share = (e.dram + e.memctrl + e.interconnect) / e.total
        assert share == pytest.approx(0.715, abs=0.12)

    def test_pim_acc_always_wins(self, dec4k, enc_hd):
        for model in (dec4k, enc_hd):
            for comp in (False, True):
                base = model.energy(comp, PimPlacement.NONE).total
                acc = model.energy(comp, PimPlacement.PIM_ACC).total
                assert acc < base

    def test_pim_core_loses_to_compressed_baseline(self, dec4k, enc_hd):
        """Figure 21's second key observation: RTL compute is an order of
        magnitude more efficient than the PIM core, so with compression
        enabled PIM-Core costs *more* than the VP9 baseline."""
        for model in (dec4k, enc_hd):
            base_comp = model.energy(True, PimPlacement.NONE).total
            core_comp = model.energy(True, PimPlacement.PIM_CORE).total
            assert core_comp > base_comp

    def test_pim_acc_nocomp_beats_baseline_comp(self, dec4k, enc_hd):
        """Figure 21's fourth observation: PIM is more effective than
        frame compression alone."""
        for model in (dec4k, enc_hd):
            acc_nocomp = model.energy(False, PimPlacement.PIM_ACC).total
            base_comp = model.energy(True, PimPlacement.NONE).total
            assert acc_nocomp < base_comp

    def test_best_configuration_is_acc_plus_compression(self, dec4k):
        energies = {
            (comp, pl): dec4k.energy(comp, pl).total
            for comp in (False, True)
            for pl in PimPlacement
        }
        assert min(energies, key=energies.get) == (True, PimPlacement.PIM_ACC)

    def test_six_configurations(self, dec4k):
        assert len(dec4k.configurations()) == 6

    def test_energy_components_positive(self, dec4k):
        e = dec4k.energy(True, PimPlacement.PIM_ACC)
        assert e.dram > 0 and e.computation > 0
        assert e.total == pytest.approx(
            e.dram + e.memctrl + e.interconnect + e.computation
        )
