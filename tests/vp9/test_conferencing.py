"""Unit tests for the video-conferencing combined workload."""

import pytest

from repro.workloads.vp9.conferencing import (
    ConferencingScenario,
    evaluate_conferencing,
)


class TestScenario:
    def test_functions_are_prefixed_and_disjoint(self):
        functions = ConferencingScenario().functions()
        names = [f.name for f in functions]
        assert len(names) == len(set(names))
        assert any(n.startswith("capture_") for n in names)
        assert any(n.startswith("playback_") for n in names)

    def test_both_deblocking_instances_present(self):
        names = [f.name for f in ConferencingScenario().functions()]
        assert "capture_deblocking_filter" in names
        assert "playback_deblocking_filter" in names

    def test_characterization_movement_dominated(self):
        ch = ConferencingScenario().characterize()
        assert ch.data_movement_fraction > 0.5


class TestEvaluation:
    @pytest.fixture(scope="class")
    def result(self):
        return evaluate_conferencing()

    def test_pim_reduces_call_energy(self, result):
        assert 0.1 < result.energy_reduction < result.offloadable_share + 0.01

    def test_pim_reduces_call_time(self, result):
        assert result.pim_time_s < result.cpu_time_s

    def test_offloadable_share_substantial(self, result):
        """ME + sub-pel + both deblocking filters cover a large share of
        a call's energy."""
        assert result.offloadable_share > 0.4

    def test_energy_scales_with_resolution(self):
        small = evaluate_conferencing(
            ConferencingScenario(capture_width=640, capture_height=368,
                                 playback_width=640, playback_height=368)
        )
        large = evaluate_conferencing()
        assert large.cpu_energy_j > 2 * small.cpu_energy_j
