"""Unit tests for lossless reference-frame compression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.vp9.frame import Frame
from repro.workloads.vp9.framecompress import (
    compress_frame,
    decompress_frame,
    measure_compression_factor,
)
from repro.workloads.vp9.hardware import FRAME_COMPRESSION_FACTOR
from repro.workloads.vp9.video import synthetic_video


class TestRoundtrip:
    def test_flat_frame(self):
        f = Frame.blank(64, 64, 90)
        c = compress_frame(f)
        assert np.array_equal(decompress_frame(c).pixels, f.pixels)
        assert c.compression_factor < 0.1  # nearly free

    def test_smooth_frame(self):
        f = synthetic_video(64, 64, 1, noise=0.0)[0]
        c = compress_frame(f)
        assert np.array_equal(decompress_frame(c).pixels, f.pixels)

    def test_noisy_frame(self):
        f = synthetic_video(64, 64, 1, noise=10.0)[0]
        c = compress_frame(f)
        assert np.array_equal(decompress_frame(c).pixels, f.pixels)

    def test_random_frame_uses_escape_blocks(self, rng):
        pixels = rng.integers(0, 256, size=(32, 32), dtype=np.uint8)
        f = Frame(pixels=pixels)
        c = compress_frame(f)
        assert np.array_equal(decompress_frame(c).pixels, pixels)
        # Random data cannot compress: stays near (or slightly above) 1x.
        assert c.compression_factor <= 1.1

    def test_extreme_gradients(self):
        pixels = np.zeros((32, 32), dtype=np.uint8)
        pixels[:, ::2] = 255  # maximal horizontal residuals
        f = Frame(pixels=pixels)
        assert np.array_equal(decompress_frame(compress_frame(f)).pixels, pixels)

    @settings(max_examples=15)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           noise=st.floats(min_value=0.0, max_value=20.0))
    def test_roundtrip_property(self, seed, noise):
        f = synthetic_video(32, 32, 1, noise=noise, seed=seed)[0]
        assert np.array_equal(decompress_frame(compress_frame(f)).pixels, f.pixels)


class TestCompressionFactor:
    def test_video_frames_near_model_constant(self):
        """The hardware model assumes compressed frames keep ~60% of raw
        bytes; the functional scheme on codec-like content must land in
        the same band."""
        frames = synthetic_video(128, 128, 4, motion=2.0, noise=2.0, seed=3)
        factor = measure_compression_factor(frames)
        assert factor == pytest.approx(FRAME_COMPRESSION_FACTOR, abs=0.2)

    def test_smoother_content_compresses_better(self):
        smooth = synthetic_video(64, 64, 1, noise=0.0, seed=1)[0]
        noisy = synthetic_video(64, 64, 1, noise=12.0, seed=1)[0]
        assert (
            compress_frame(smooth).compression_factor
            < compress_frame(noisy).compression_factor
        )

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            measure_compression_factor([])

    def test_metadata(self):
        f = Frame.blank(64, 48)
        c = compress_frame(f)
        assert (c.width, c.height) == (64, 48)
        assert c.raw_bytes == 64 * 48
