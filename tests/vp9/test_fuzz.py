"""Fuzz/robustness properties: decoders must never crash on garbage.

Every parser in the codebase that consumes untrusted bytes -- the VP9
frame decoder, the LZO decompressor, the frame decompressor, the range
decoder -- must either decode *something* or raise ValueError.  No
IndexError, OverflowError, or infinite loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.chrome.lzo import decompress as lzo_decompress
from repro.workloads.vp9.decoder import Vp9Decoder
from repro.workloads.vp9.encoder import EncodedFrame, encode_video
from repro.workloads.vp9.entropy import RangeDecoder, RangeEncoder
from repro.workloads.vp9.framecompress import CompressedFrame, decompress_frame
from repro.workloads.vp9.video import synthetic_video

garbage = st.binary(min_size=0, max_size=512)


class TestLzoFuzz:
    @settings(max_examples=60)
    @given(data=garbage)
    def test_decompress_never_crashes(self, data):
        try:
            restored, stats = lzo_decompress(data)
            assert stats.output_bytes == len(restored)
        except ValueError:
            pass


class TestFrameCompressFuzz:
    @settings(max_examples=25)
    @given(data=st.binary(min_size=0, max_size=2048))
    def test_decompress_frame_never_crashes(self, data):
        # Structure is deterministic: random bits decode to *some* frame
        # (the bit reader zero-extends past the end).
        frame = decompress_frame(CompressedFrame(data=data, width=32, height=32))
        assert frame.pixels.shape == (32, 32)


class TestRangeDecoderFuzz:
    @settings(max_examples=40)
    @given(data=garbage, probs=st.lists(st.integers(1, 255), min_size=1,
                                        max_size=64))
    def test_decode_any_bytes(self, data, probs):
        dec = RangeDecoder(data)
        for p in probs:
            assert dec.decode(p) in (0, 1)


class TestVp9DecoderFuzz:
    @pytest.fixture(scope="class")
    def key_frame(self):
        clip = synthetic_video(48, 48, 2, motion=1.0, seed=1)
        encoded, _ = encode_video(clip)
        return encoded

    @settings(max_examples=25)
    @given(noise=st.binary(min_size=8, max_size=256),
           seed=st.integers(0, 1000))
    def test_corrupted_inter_frame(self, key_frame, noise, seed):
        """Random corruption of a real inter frame: decode or ValueError."""
        rng = np.random.default_rng(seed)
        data = bytearray(key_frame[1].data)
        for b in noise:
            data[int(rng.integers(0, len(data)))] ^= b or 1
        decoder = Vp9Decoder()
        decoder.decode_frame(key_frame[0])
        bad = EncodedFrame(bytes(data), False, 48, 48)
        try:
            frame = decoder.decode_frame(bad)
            assert frame.width == 48
        except ValueError:
            pass

    @settings(max_examples=15)
    @given(data=st.binary(min_size=6, max_size=128))
    def test_pure_garbage_key_frame(self, data):
        """Fully random bytes presented as a key frame."""
        decoder = Vp9Decoder()
        bad = EncodedFrame(bytes(data), True, 48, 48)
        try:
            decoder.decode_frame(bad)
        except ValueError:
            pass


class TestEncoderLiteralBounds:
    def test_oversized_literal_rejected(self):
        enc = RangeEncoder()
        with pytest.raises(ValueError):
            enc.encode_literal(16, 4)
        with pytest.raises(ValueError):
            enc.encode_literal(-1, 4)
        with pytest.raises(ValueError):
            enc.encode_literal(0, -1)
