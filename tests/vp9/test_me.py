"""Unit tests for motion estimation."""

import numpy as np
import pytest

from repro.workloads.vp9.me import (
    SearchStats,
    diamond_search,
    full_search,
    multi_reference_search,
    sad,
)


def shifted_scene(dy, dx, size=64, seed=0):
    """(reference, current) where current is reference translated by
    (dy, dx) -- i.e. content moved, so the best MV points back.

    The content is *smooth* (low-frequency, like real video): gradient-
    descent searches such as the diamond search need a SAD landscape that
    decreases toward the optimum, which white noise does not provide.
    """
    rng = np.random.default_rng(seed)
    coarse = rng.uniform(0, 255, size=(size // 4 + 4, size // 4 + 4))
    big = np.kron(coarse, np.ones((8, 8)))  # upsample 8x
    # Two box-blur passes smooth the block edges into gradients.
    for _ in range(2):
        big = (
            big
            + np.roll(big, 1, 0) + np.roll(big, -1, 0)
            + np.roll(big, 1, 1) + np.roll(big, -1, 1)
        ) / 5.0
    big = np.clip(big, 0, 255).astype(np.uint8)
    ref = big[size // 2 : size // 2 + size, size // 2 : size // 2 + size]
    cur = big[size // 2 + dy : size // 2 + dy + size,
              size // 2 + dx : size // 2 + dx + size]
    return np.ascontiguousarray(ref), np.ascontiguousarray(cur)


class TestSad:
    def test_identical_blocks(self, rng):
        b = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
        assert sad(b, b) == 0

    def test_known_difference(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 3, dtype=np.uint8)
        assert sad(a, b) == 48

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sad(np.zeros((4, 4)), np.zeros((8, 8)))

    def test_no_uint8_overflow(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = np.full((4, 4), 255, dtype=np.uint8)
        assert sad(a, b) == 16 * 255


class TestDiamondSearch:
    @pytest.mark.parametrize("dy,dx", [(0, 0), (2, 3), (-4, 1), (5, -5), (-3, -3)])
    def test_finds_known_translation(self, dy, dx):
        ref, cur = shifted_scene(dy, dx)
        mv, cost = diamond_search(cur[16:32, 16:32], ref, 1, 1, search_range=8)
        assert (mv.int_y, mv.int_x) == (dy, dx)
        assert cost == 0

    def test_matches_full_search_on_translations(self):
        ref, cur = shifted_scene(3, -2)
        block = cur[16:32, 16:32]
        dmv, dcost = diamond_search(block, ref, 1, 1, search_range=8)
        fmv, fcost = full_search(block, ref, 1, 1, search_range=8)
        assert dcost == fcost == 0
        assert (dmv.int_y, dmv.int_x) == (fmv.int_y, fmv.int_x)

    def test_diamond_cost_close_to_optimum_on_noisy_content(self, rng):
        """Diamond search is greedy; on real content it should land within
        a modest factor of the exhaustive optimum."""
        ref = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        cur = np.clip(
            ref.astype(int) + rng.normal(0, 8, ref.shape), 0, 255
        ).astype(np.uint8)
        block = cur[16:32, 16:32]
        _, dcost = diamond_search(block, ref, 1, 1, search_range=8)
        _, fcost = full_search(block, ref, 1, 1, search_range=8)
        assert dcost <= max(3 * fcost, fcost + 512)

    def test_search_range_respected(self):
        ref, cur = shifted_scene(6, 6)
        mv, _ = diamond_search(cur[16:32, 16:32], ref, 1, 1, search_range=2)
        assert abs(mv.int_x) <= 2 and abs(mv.int_y) <= 2

    def test_stats_counted(self):
        ref, cur = shifted_scene(1, 1)
        stats = SearchStats()
        diamond_search(cur[16:32, 16:32], ref, 1, 1, stats=stats)
        assert stats.sad_evaluations > 0
        assert stats.pixels_compared == stats.sad_evaluations * 256

    def test_cheaper_than_full_search(self):
        ref, cur = shifted_scene(4, -3)
        ds, fs = SearchStats(), SearchStats()
        diamond_search(cur[16:32, 16:32], ref, 1, 1, search_range=8, stats=ds)
        full_search(cur[16:32, 16:32], ref, 1, 1, search_range=8, stats=fs)
        assert ds.sad_evaluations < fs.sad_evaluations / 3


class TestMultiReference:
    def test_picks_best_reference(self):
        ref_good, cur = shifted_scene(2, 2, seed=7)
        rng = np.random.default_rng(99)
        ref_bad = rng.integers(0, 256, size=ref_good.shape, dtype=np.uint8)
        block = cur[16:32, 16:32]
        idx, mv, cost = multi_reference_search(block, [ref_bad, ref_good], 1, 1)
        assert idx == 1
        assert cost == 0

    def test_at_most_three_references(self):
        ref, cur = shifted_scene(0, 0)
        refs = [ref] * 5
        stats = SearchStats()
        multi_reference_search(cur[16:32, 16:32], refs, 1, 1, stats=stats)
        # Zero-motion match found instantly in each of 3 refs.
        assert stats.sad_evaluations <= 3 * 30

    def test_no_references_rejected(self):
        with pytest.raises(ValueError):
            multi_reference_search(np.zeros((16, 16), dtype=np.uint8), [], 0, 0)
