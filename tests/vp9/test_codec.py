"""Integration tests: the full encoder/decoder loop."""

import numpy as np
import pytest

from repro.workloads.vp9.decoder import Vp9Decoder, decode_video
from repro.workloads.vp9.encoder import EncodedFrame, Vp9Encoder, encode_video
from repro.workloads.vp9.frame import Frame
from repro.workloads.vp9.video import synthetic_video


@pytest.fixture(scope="module")
def clip():
    return synthetic_video(64, 64, 6, motion=2.7, objects=3, noise=1.0, seed=11)


@pytest.fixture(scope="module")
def coded(clip):
    encoded, encoder = encode_video(clip, qstep=16)
    decoded, decoder = decode_video(encoded)
    return encoded, encoder, decoded, decoder


class TestRoundtrip:
    def test_decoder_matches_encoder_reconstruction(self, clip, coded):
        """The decoder output is bit-exact with the encoder's own
        reconstruction (drift-free closed loop)."""
        encoded, encoder, decoded, _ = coded
        assert np.array_equal(
            encoder.last_reconstructed.pixels, decoded[-1].pixels
        )

    def test_quality_reasonable(self, clip, coded):
        _, _, decoded, _ = coded
        for original, restored in zip(clip, decoded):
            assert original.psnr(restored) > 30.0

    def test_finer_quantization_improves_quality(self, clip):
        coarse = decode_video(encode_video(clip, qstep=64)[0])[0]
        fine = decode_video(encode_video(clip, qstep=4)[0])[0]
        assert clip[-1].psnr(fine[-1]) > clip[-1].psnr(coarse[-1])

    def test_finer_quantization_costs_bits(self, clip):
        coarse, _ = encode_video(clip, qstep=64)
        fine, _ = encode_video(clip, qstep=4)
        assert sum(len(f.data) for f in fine) > sum(len(f.data) for f in coarse)

    def test_compression_achieved(self, clip, coded):
        encoded, _, _, _ = coded
        raw = 64 * 64
        for frame in encoded[1:]:
            assert len(frame.data) < raw / 2

    def test_inter_frames_smaller_than_key(self, coded):
        encoded, _, _, _ = coded
        key = len(encoded[0].data)
        inter = [len(f.data) for f in encoded[1:]]
        assert max(inter) < key

    def test_static_video_nearly_free(self):
        frames = [Frame.blank(64, 64, 90) for _ in range(4)]
        encoded, _ = encode_video(frames)
        for f in encoded[1:]:
            assert len(f.data) < 100


class TestStructure:
    def test_first_frame_is_key(self, coded):
        encoded, _, _, _ = coded
        assert encoded[0].is_key
        assert not any(f.is_key for f in encoded[1:])

    def test_inter_prediction_used(self, coded):
        _, encoder, _, decoder = coded
        assert encoder.stats.inter_macroblocks > 0
        assert decoder.stats.inter_macroblocks == encoder.stats.inter_macroblocks

    def test_subpel_blocks_tracked(self, coded):
        _, encoder, _, decoder = coded
        assert decoder.stats.subpel_blocks == encoder.stats.subpel_blocks

    def test_stats_macroblock_count(self, clip, coded):
        _, _, _, decoder = coded
        per_frame = (64 // 16) ** 2
        assert decoder.stats.macroblocks == per_frame * len(clip)

    def test_reference_pixels_tracked(self, coded):
        _, _, _, decoder = coded
        assert decoder.stats.reference_pixels > 0
        assert 0.0 < decoder.stats.reference_pixels_per_pixel < 3.5

    def test_reference_list_bounded(self, coded):
        _, encoder, _, decoder = coded
        assert len(encoder.references) <= 3
        assert len(decoder.references) <= 3


class TestErrors:
    def test_inter_frame_without_key_rejected(self, clip):
        encoded, _ = encode_video(clip)
        decoder = Vp9Decoder()
        with pytest.raises(ValueError):
            decoder.decode_frame(encoded[1])

    def test_invalid_qstep(self):
        with pytest.raises(ValueError):
            Vp9Encoder(qstep=0)
        with pytest.raises(ValueError):
            Vp9Encoder(qstep=500)

    def test_corrupt_stream_detected_or_decodes(self, clip):
        """Flipping bytes in the payload must never crash: either a
        ValueError (detected corruption) or a (wrong) decoded frame."""
        encoded, _ = encode_video(clip[:2])
        corrupt = bytearray(encoded[1].data)
        for i in range(4, min(len(corrupt), 24)):
            corrupt[i] ^= 0xFF
        bad = EncodedFrame(bytes(corrupt), encoded[1].is_key,
                           encoded[1].width, encoded[1].height)
        decoder = Vp9Decoder()
        decoder.decode_frame(encoded[0])
        try:
            frame = decoder.decode_frame(bad)
            assert frame.width == 64
        except ValueError:
            pass


class TestNonSquare:
    def test_rectangular_video(self):
        frames = synthetic_video(96, 48, 3, motion=1.5, seed=2)
        encoded, encoder = encode_video(frames)
        decoded, _ = decode_video(encoded)
        assert decoded[0].width == 96 and decoded[0].height == 48
        assert np.array_equal(encoder.last_reconstructed.pixels, decoded[-1].pixels)


class TestCodecProperty:
    """Property-based fuzzing of the full codec loop."""

    def test_roundtrip_over_random_parameters(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=8)
        @given(
            qstep=st.sampled_from([4, 16, 48, 120]),
            motion=st.floats(min_value=0.0, max_value=5.0),
            seed=st.integers(min_value=0, max_value=100),
            mb_w=st.integers(min_value=2, max_value=5),
            mb_h=st.integers(min_value=2, max_value=4),
        )
        def check(qstep, motion, seed, mb_w, mb_h):
            clip = synthetic_video(
                mb_w * 16, mb_h * 16, 3, motion=motion, seed=seed
            )
            encoded, encoder = encode_video(clip, qstep=qstep)
            decoded, _ = decode_video(encoded)
            assert np.array_equal(
                encoder.last_reconstructed.pixels, decoded[-1].pixels
            )
            assert clip[-1].psnr(decoded[-1]) > 18.0

        check()
