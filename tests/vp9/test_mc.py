"""Unit tests for motion compensation / sub-pixel interpolation."""

import numpy as np
import pytest

from repro.workloads.vp9.mc import (
    MotionVector,
    SUBPEL_TAPS,
    interpolate_block,
    motion_compensate_block,
    reference_pixels_fetched,
)


class TestMotionVector:
    def test_integer_split(self):
        mv = MotionVector(dx=19, dy=-5)
        assert mv.int_x == 2 and mv.frac_x == 3
        # Arithmetic shift semantics for negative components.
        assert mv.int_y == -1 and mv.frac_y == 3

    def test_subpel_detection(self):
        assert not MotionVector(8, -16).is_subpel
        assert MotionVector(9, 0).is_subpel


class TestFilterBank:
    def test_eight_phases_eight_taps(self):
        assert SUBPEL_TAPS.shape == (8, 8)

    def test_taps_sum_to_128(self):
        """Unity DC gain: every phase's taps sum to the 128 scale."""
        assert (SUBPEL_TAPS.sum(axis=1) == 128).all()

    def test_phase_zero_is_identity(self):
        assert SUBPEL_TAPS[0, 3] == 128
        assert SUBPEL_TAPS[0].sum() == 128

    def test_half_pel_is_symmetric(self):
        assert np.array_equal(SUBPEL_TAPS[4], SUBPEL_TAPS[4][::-1])

    def test_mirror_phases(self):
        """Phase k and phase 8-k are mirror images."""
        for k in (1, 2, 3):
            assert np.array_equal(SUBPEL_TAPS[k], SUBPEL_TAPS[8 - k][::-1])


class TestInterpolation:
    def test_integer_position_is_copy(self, rng):
        ref = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        block = interpolate_block(ref, 8, 8, 0, 0, 16, 16)
        assert np.array_equal(block, ref[8:24, 8:24])

    def test_constant_field_stays_constant(self):
        ref = np.full((64, 64), 99, dtype=np.uint8)
        for fy in range(8):
            for fx in range(8):
                block = interpolate_block(ref, 16, 16, fy, fx, 8, 8)
                assert (block == 99).all(), (fy, fx)

    def test_linear_ramp_interpolates_between_samples(self):
        """Half-pel samples of a linear ramp land midway (+-1 for
        rounding)."""
        ref = np.tile(np.arange(0, 128, 2, dtype=np.uint8), (64, 1))
        block = interpolate_block(ref, 16, 20, 0, 4, 8, 8)
        expected = ref[16:24, 20:28].astype(int) + 1  # halfway up a slope of 2
        assert np.abs(block.astype(int) - expected).max() <= 1

    def test_invalid_fraction_rejected(self):
        ref = np.zeros((32, 32), dtype=np.uint8)
        with pytest.raises(ValueError):
            interpolate_block(ref, 0, 0, 8, 0, 8, 8)

    def test_edge_clamping(self):
        """Blocks near the frame border clamp coordinates instead of
        reading out of bounds."""
        ref = np.zeros((32, 32), dtype=np.uint8)
        ref[:, 0] = 200
        block = interpolate_block(ref, 0, -2, 0, 4, 8, 8)
        assert block.shape == (8, 8)
        assert block[0, 0] > 150  # dominated by the clamped edge column

    def test_output_dtype_and_range(self, rng):
        ref = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        block = interpolate_block(ref, 10, 10, 3, 5, 16, 16)
        assert block.dtype == np.uint8

    def test_separability_horizontal_only(self, rng):
        """frac_y = 0 must skip the vertical pass entirely: a pure
        horizontal interpolation of a column-constant image is exact."""
        col = np.arange(64, dtype=np.uint8) * 2
        ref = np.tile(col, (64, 1))
        a = interpolate_block(ref, 5, 5, 0, 3, 8, 8)
        b = interpolate_block(ref, 25, 5, 0, 3, 8, 8)
        assert np.array_equal(a, b)  # rows identical regardless of y


class TestMotionCompensation:
    def test_full_pel_motion_recovers_shifted_block(self, rng):
        ref = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        mv = MotionVector(dx=3 * 8, dy=-2 * 8)
        pred = motion_compensate_block(ref, 1, 1, mv)
        assert np.array_equal(pred, ref[16 - 2 : 32 - 2, 16 + 3 : 32 + 3])

    def test_reference_pixels_fetched(self):
        assert reference_pixels_fetched(MotionVector(0, 0)) == 256
        assert reference_pixels_fetched(MotionVector(1, 0)) == 23 * 16
        assert reference_pixels_fetched(MotionVector(1, 1)) == 23 * 23
