"""Unit + property tests for the DCT transform path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.workloads.vp9.transform import (
    BLOCK,
    dequantize_coefficients,
    forward_dct,
    inverse_dct,
    quantize_coefficients,
    zigzag_scan,
    zigzag_unscan,
    ZIGZAG,
)

blocks = hnp.arrays(
    dtype=np.float64, shape=(BLOCK, BLOCK),
    elements=st.floats(min_value=-255, max_value=255, allow_nan=False),
)


class TestDct:
    def test_inverse_is_exact(self, rng):
        b = rng.uniform(-128, 128, size=(BLOCK, BLOCK))
        assert np.allclose(inverse_dct(forward_dct(b)), b, atol=1e-9)

    def test_constant_block_is_dc_only(self):
        b = np.full((BLOCK, BLOCK), 50.0)
        coeffs = forward_dct(b)
        assert coeffs[0, 0] == pytest.approx(50.0 * BLOCK)
        off_dc = coeffs.copy()
        off_dc[0, 0] = 0.0
        assert np.abs(off_dc).max() < 1e-9

    def test_energy_preserved(self, rng):
        """Orthonormal transform: Parseval's theorem."""
        b = rng.uniform(-100, 100, size=(BLOCK, BLOCK))
        assert np.sum(b * b) == pytest.approx(np.sum(forward_dct(b) ** 2))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            forward_dct(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_dct(np.zeros((4, 4)))

    def test_linearity(self, rng):
        a = rng.uniform(-50, 50, size=(BLOCK, BLOCK))
        b = rng.uniform(-50, 50, size=(BLOCK, BLOCK))
        assert np.allclose(
            forward_dct(a + b), forward_dct(a) + forward_dct(b), atol=1e-9
        )

    @settings(max_examples=30)
    @given(b=blocks)
    def test_roundtrip_property(self, b):
        assert np.allclose(inverse_dct(forward_dct(b)), b, atol=1e-6)


class TestQuantization:
    def test_roundtrip_error_bounded(self, rng):
        coeffs = rng.uniform(-500, 500, size=(BLOCK, BLOCK))
        q = quantize_coefficients(coeffs, qstep=16.0)
        restored = dequantize_coefficients(q, qstep=16.0)
        assert np.abs(restored - coeffs).max() <= 8.0 + 1e-9

    def test_larger_qstep_zeroes_more(self, rng):
        coeffs = rng.uniform(-50, 50, size=(BLOCK, BLOCK))
        fine = quantize_coefficients(coeffs, 4.0)
        coarse = quantize_coefficients(coeffs, 64.0)
        assert (coarse == 0).sum() >= (fine == 0).sum()

    def test_invalid_qstep(self):
        with pytest.raises(ValueError):
            quantize_coefficients(np.zeros((8, 8)), 0.0)
        with pytest.raises(ValueError):
            dequantize_coefficients(np.zeros((8, 8)), -1.0)

    def test_quantized_dtype(self):
        q = quantize_coefficients(np.ones((8, 8)) * 33.3, 16.0)
        assert q.dtype == np.int32


class TestZigzag:
    def test_is_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(64))

    def test_starts_at_dc(self):
        assert ZIGZAG[0] == 0

    def test_second_element_is_low_frequency(self):
        assert ZIGZAG[1] in (1, 8)

    def test_roundtrip(self, rng):
        levels = rng.integers(-100, 100, size=(BLOCK, BLOCK)).astype(np.int32)
        assert np.array_equal(zigzag_unscan(zigzag_scan(levels)), levels)

    def test_orders_by_frequency(self):
        """Zigzag must visit low frequencies (small y+x) before high."""
        positions = [(idx // 8, idx % 8) for idx in ZIGZAG.tolist()]
        sums = [y + x for y, x in positions]
        # Diagonal sums must be non-decreasing.
        assert sums == sorted(sums)
