"""Unit tests for the deblocking filter."""

import numpy as np
import pytest

from repro.workloads.vp9.deblock import DeblockStats, deblock_frame
from repro.workloads.vp9.frame import Frame


def frame_with_vertical_step(step=8, size=64):
    """Two flat half-planes meeting exactly on a block boundary."""
    pixels = np.full((size, size), 100, dtype=np.uint8)
    pixels[:, 32:] = 100 + step
    return Frame(pixels=pixels)


class TestDeblocking:
    def test_small_step_smoothed(self):
        f = frame_with_vertical_step(step=8)
        stats = DeblockStats()
        out = deblock_frame(f, threshold=12, stats=stats)
        before = abs(int(f.pixels[10, 32]) - int(f.pixels[10, 31]))
        after = abs(int(out.pixels[10, 32]) - int(out.pixels[10, 31]))
        assert after < before
        assert stats.edges_filtered > 0

    def test_large_step_preserved(self):
        """A real image edge (step above threshold) must not be blurred."""
        f = frame_with_vertical_step(step=80)
        out = deblock_frame(f, threshold=12)
        assert np.array_equal(out.pixels, f.pixels)

    def test_flat_frame_untouched(self):
        f = Frame(pixels=np.full((64, 64), 42, dtype=np.uint8))
        out = deblock_frame(f)
        assert np.array_equal(out.pixels, f.pixels)

    def test_horizontal_edges_filtered_too(self):
        pixels = np.full((64, 64), 100, dtype=np.uint8)
        pixels[32:, :] = 108
        stats = DeblockStats()
        out = deblock_frame(Frame(pixels=pixels), threshold=12, stats=stats)
        before = abs(int(pixels[32, 10]) - int(pixels[31, 10]))
        after = abs(int(out.pixels[32, 10]) - int(out.pixels[31, 10]))
        assert after < before

    def test_threshold_zero_is_noop(self, rng):
        pixels = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        out = deblock_frame(Frame(pixels=pixels.copy()), threshold=0)
        assert np.array_equal(out.pixels, pixels)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            deblock_frame(Frame.blank(64, 64), threshold=-1)

    def test_input_frame_not_modified(self):
        f = frame_with_vertical_step()
        original = f.pixels.copy()
        deblock_frame(f)
        assert np.array_equal(f.pixels, original)

    def test_stats_accounting(self):
        f = frame_with_vertical_step(step=8)
        stats = DeblockStats()
        deblock_frame(f, threshold=12, stats=stats)
        assert stats.pixels_modified == 2 * stats.edges_filtered
        assert stats.edges_checked >= stats.edges_filtered

    def test_interior_only(self):
        """Only interior 8-px-grid edges are checked, not the frame
        borders."""
        f = Frame.blank(64, 64)
        stats = DeblockStats()
        deblock_frame(f, stats=stats)
        # 7 interior vertical edge columns x 64 rows, both orientations.
        assert stats.edges_checked == 2 * 7 * 64
