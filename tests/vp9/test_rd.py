"""Unit tests for the rate-distortion tooling."""

import pytest

from repro.workloads.vp9.rd import RdPoint, bd_psnr, rd_curve
from repro.workloads.vp9.video import synthetic_video


@pytest.fixture(scope="module")
def clip():
    return synthetic_video(64, 64, 5, motion=2.5, objects=3, noise=1.0, seed=13)


@pytest.fixture(scope="module")
def curve(clip):
    return rd_curve(clip, qsteps=(8, 24, 64))


class TestRdCurve:
    def test_empty_clip_rejected(self):
        with pytest.raises(ValueError):
            rd_curve([])

    def test_monotone_rate_in_qstep(self, curve):
        rates = [p.bits_per_pixel for p in curve]
        assert rates == sorted(rates, reverse=True)

    def test_monotone_quality_in_qstep(self, curve):
        psnrs = [p.psnr_db for p in curve]
        assert psnrs == sorted(psnrs, reverse=True)

    def test_point_fields(self, curve):
        for p in curve:
            assert p.bits_per_pixel > 0
            assert 15 < p.psnr_db < 70


class TestBdPsnr:
    def test_identical_curves_zero_delta(self, curve):
        assert bd_psnr(curve, curve) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_curve_positive_delta(self, curve):
        better = [
            RdPoint(p.qstep, p.bits_per_pixel, p.psnr_db + 1.0) for p in curve
        ]
        assert bd_psnr(curve, better) == pytest.approx(1.0, abs=1e-6)

    def test_needs_two_points(self, curve):
        with pytest.raises(ValueError):
            bd_psnr(curve[:1], curve)

    def test_disjoint_curves_rejected(self, curve):
        shifted = [
            RdPoint(p.qstep, p.bits_per_pixel * 1000.0, p.psnr_db) for p in curve
        ]
        with pytest.raises(ValueError):
            bd_psnr(curve, shifted)

    def test_split_prediction_does_not_hurt_rd(self, clip):
        """The 8x8 split feature must be RD-neutral-or-better on real
        content (it is only chosen when it beats the whole-block SAD)."""
        with_split = rd_curve(clip, qsteps=(8, 24, 64), allow_split=True)
        without = rd_curve(clip, qsteps=(8, 24, 64), allow_split=False)
        assert bd_psnr(without, with_split) > -0.3
