"""Unit tests for the one-pass rate controller."""

import numpy as np
import pytest

from repro.workloads.vp9.decoder import decode_video
from repro.workloads.vp9.encoder import encode_video
from repro.workloads.vp9.ratecontrol import (
    RateControlConfig,
    encode_at_bitrate,
)
from repro.workloads.vp9.video import synthetic_video


@pytest.fixture(scope="module")
def clip():
    return synthetic_video(64, 64, 14, motion=2.4, objects=4, noise=1.5, seed=5)


class TestConfig:
    def test_invalid_target(self):
        with pytest.raises(ValueError):
            RateControlConfig(target_bytes_per_frame=0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            RateControlConfig(target_bytes_per_frame=100, min_qstep=50,
                              max_qstep=10)


class TestConvergence:
    def test_converges_to_target(self, clip):
        target = 250.0
        encoded, controller = encode_at_bitrate(clip, target)
        tail = [len(f.data) for f in encoded[len(encoded) // 2 :]]
        mean_tail = sum(tail) / len(tail)
        assert mean_tail == pytest.approx(target, rel=0.5)

    def test_low_target_raises_qstep(self, clip):
        _, tight = encode_at_bitrate(clip, 80.0)
        _, loose = encode_at_bitrate(clip, 2000.0)
        assert tight.qstep > loose.qstep

    def test_low_target_costs_quality(self, clip):
        tight_encoded, _ = encode_at_bitrate(clip, 80.0)
        loose_encoded, _ = encode_at_bitrate(clip, 2000.0)
        tight = decode_video(tight_encoded)[0]
        loose = decode_video(loose_encoded)[0]
        assert clip[-1].psnr(loose[-1]) > clip[-1].psnr(tight[-1])

    def test_qstep_stays_in_bounds(self, clip):
        _, controller = encode_at_bitrate(clip, 10.0)  # impossible target
        cfg = controller.config
        for h in controller.history:
            assert cfg.min_qstep - 1 <= h["qstep"] <= cfg.max_qstep + 1

    def test_stream_remains_decodable(self, clip):
        encoded, controller = encode_at_bitrate(clip, 300.0)
        decoded, _ = decode_video(encoded)
        assert np.array_equal(
            controller._encoder.last_reconstructed.pixels, decoded[-1].pixels
        )

    def test_key_frame_gets_headroom(self, clip):
        _, controller = encode_at_bitrate(clip, 250.0)
        assert controller.history[0]["is_key"]
        # The oversized key frame must not slam qstep to the maximum.
        assert controller.history[1]["qstep"] < controller.config.max_qstep / 2


class TestComparisonWithFixedQ:
    def test_rate_control_tracks_target_better_than_fixed_q(self, clip):
        target = 220.0
        rc_encoded, _ = encode_at_bitrate(clip, target)
        fixed_encoded, _ = encode_video(clip, qstep=16)
        rc_err = abs(
            np.mean([len(f.data) for f in rc_encoded[4:]]) - target
        )
        fixed_err = abs(
            np.mean([len(f.data) for f in fixed_encoded[4:]]) - target
        )
        assert rc_err <= fixed_err
