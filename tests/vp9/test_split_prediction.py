"""Unit tests for variable block-size (16x16 -> 8x8) inter prediction."""

import numpy as np

from repro.workloads.vp9.decoder import decode_video
from repro.workloads.vp9.encoder import Vp9Encoder, encode_video
from repro.workloads.vp9.frame import Frame
from repro.workloads.vp9.video import synthetic_video


def divergent_motion_clip(frames=4, size=64, seed=3):
    """Two halves of the frame move in opposite directions: whole-block
    motion vectors cannot describe macroblocks straddling the boundary,
    so splits must trigger."""
    rng = np.random.default_rng(seed)
    coarse = rng.uniform(0, 255, size=(size // 4 + 8, size // 4 + 8))
    big = np.kron(coarse, np.ones((8, 8)))
    for _ in range(2):
        big = (
            big + np.roll(big, 1, 0) + np.roll(big, -1, 0)
            + np.roll(big, 1, 1) + np.roll(big, -1, 1)
        ) / 5.0
    out = []
    for t in range(frames):
        canvas = np.empty((size, size))
        canvas[: size // 2] = np.roll(big, 3 * t, axis=1)[8 : 8 + size // 2, 8 : 8 + size]
        canvas[size // 2 :] = np.roll(big, -3 * t, axis=1)[
            16 : 16 + size // 2, 8 : 8 + size
        ]
        out.append(Frame(pixels=np.clip(canvas, 0, 255).astype(np.uint8)))
    return out


class TestSplitFeature:
    def test_splits_trigger_on_divergent_motion(self):
        clip = divergent_motion_clip()
        encoded, encoder = encode_video(clip, qstep=16)
        assert encoder.stats.split_macroblocks > 0

    def test_split_streams_roundtrip_bit_exactly(self):
        clip = divergent_motion_clip()
        encoded, encoder = encode_video(clip, qstep=16)
        decoded, decoder = decode_video(encoded)
        assert decoder.stats.split_macroblocks == encoder.stats.split_macroblocks
        assert np.array_equal(encoder.last_reconstructed.pixels, decoded[-1].pixels)

    def test_split_improves_rate_on_divergent_motion(self):
        clip = divergent_motion_clip()
        with_split, _ = encode_video(clip, qstep=16)
        encoder = Vp9Encoder(qstep=16, allow_split=False)
        without_split = [encoder.encode_frame(f) for f in clip]
        assert sum(len(f.data) for f in with_split) < sum(
            len(f.data) for f in without_split
        )

    def test_disabled_split_never_splits(self):
        clip = divergent_motion_clip()
        encoder = Vp9Encoder(qstep=16, allow_split=False)
        for f in clip:
            encoder.encode_frame(f)
        assert encoder.stats.split_macroblocks == 0

    def test_uniform_motion_rarely_splits(self):
        """Whole-frame translation: whole-block MVs suffice, so the
        SPLIT_BIAS should keep splits rare."""
        clip = synthetic_video(64, 64, 5, motion=2.0, objects=2, noise=0.5,
                               seed=9)
        encoded, encoder = encode_video(clip, qstep=16)
        split_rate = encoder.stats.split_macroblocks / max(
            encoder.stats.inter_macroblocks, 1
        )
        assert split_rate < 0.5

    def test_split_quality_not_worse(self):
        clip = divergent_motion_clip()
        with_split, _ = encode_video(clip, qstep=16)
        encoder = Vp9Encoder(qstep=16, allow_split=False)
        without_split = [encoder.encode_frame(f) for f in clip]
        psnr_split = clip[-1].psnr(decode_video(with_split)[0][-1])
        psnr_whole = clip[-1].psnr(decode_video(without_split)[0][-1])
        assert psnr_split >= psnr_whole - 0.5
