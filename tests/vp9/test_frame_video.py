"""Unit tests for Frame and the synthetic video generator."""

import numpy as np
import pytest

from repro.workloads.vp9.frame import Frame, MACROBLOCK, RESOLUTIONS
from repro.workloads.vp9.video import synthetic_video


class TestFrame:
    def test_dimensions_must_be_mb_aligned(self):
        with pytest.raises(ValueError):
            Frame(pixels=np.zeros((60, 64), dtype=np.uint8))

    def test_dtype_enforced(self):
        with pytest.raises(ValueError):
            Frame(pixels=np.zeros((64, 64), dtype=np.float32))

    def test_macroblock_access(self):
        f = Frame.blank(64, 48)
        assert f.mb_rows == 3 and f.mb_cols == 4
        assert f.num_macroblocks == 12
        assert f.macroblock(2, 3).shape == (MACROBLOCK, MACROBLOCK)

    def test_macroblock_out_of_range(self):
        with pytest.raises(IndexError):
            Frame.blank(64, 64).macroblock(4, 0)

    def test_set_macroblock(self):
        f = Frame.blank(32, 32, 0)
        block = np.full((16, 16), 7, dtype=np.uint8)
        f.set_macroblock(1, 1, block)
        assert (f.pixels[16:, 16:] == 7).all()
        assert (f.pixels[:16, :16] == 0).all()

    def test_psnr_identical_is_infinite(self):
        f = Frame.blank(32, 32)
        assert f.psnr(f.copy()) == float("inf")

    def test_psnr_known_value(self):
        a = Frame.blank(32, 32, 100)
        b = Frame.blank(32, 32, 110)
        # MSE = 100 -> PSNR = 10 log10(255^2/100) = 28.13 dB.
        assert a.psnr(b) == pytest.approx(28.13, abs=0.01)

    def test_psnr_size_mismatch(self):
        with pytest.raises(ValueError):
            Frame.blank(32, 32).psnr(Frame.blank(64, 64))

    def test_copy_is_deep(self):
        f = Frame.blank(32, 32)
        c = f.copy()
        c.pixels[0, 0] = 99
        assert f.pixels[0, 0] != 99

    def test_paper_resolutions(self):
        assert RESOLUTIONS["HD"] == (1280, 720)
        assert RESOLUTIONS["4K"] == (3840, 2160)


class TestSyntheticVideo:
    def test_frame_count_and_size(self):
        clip = synthetic_video(64, 48, 5)
        assert len(clip) == 5
        assert clip[0].width == 64 and clip[0].height == 48

    def test_deterministic(self):
        a = synthetic_video(64, 64, 3, seed=4)
        b = synthetic_video(64, 64, 3, seed=4)
        assert np.array_equal(a[2].pixels, b[2].pixels)

    def test_motion_changes_frames(self):
        clip = synthetic_video(64, 64, 4, motion=4.0, noise=0.0)
        assert not np.array_equal(clip[0].pixels, clip[3].pixels)

    def test_zero_motion_keeps_objects_static(self):
        clip = synthetic_video(64, 64, 3, motion=0.0, noise=0.0)
        assert np.array_equal(clip[0].pixels, clip[2].pixels)

    def test_noise_perturbs(self):
        quiet = synthetic_video(64, 64, 1, noise=0.0, seed=1)[0]
        noisy = synthetic_video(64, 64, 1, noise=5.0, seed=1)[0]
        assert not np.array_equal(quiet.pixels, noisy.pixels)

    def test_invalid_frame_count(self):
        with pytest.raises(ValueError):
            synthetic_video(64, 64, 0)

    def test_motion_is_trackable(self):
        """Consecutive frames must correlate strongly (the codec's inter
        prediction relies on it)."""
        clip = synthetic_video(64, 64, 2, motion=2.0, noise=1.0)
        psnr = clip[0].psnr(clip[1])
        assert psnr > 15.0
