"""Unit tests for intra prediction."""

import numpy as np
import pytest

from repro.workloads.vp9.predict import INTRA_MODES, best_intra_mode, intra_predict


def frame_with_borders(size=16):
    """A 2x2-macroblock frame with known top/left neighbours for (1, 1)."""
    f = np.zeros((2 * size, 2 * size), dtype=np.uint8)
    f[size - 1, size:] = np.arange(size, dtype=np.uint8) + 10  # top row
    f[size:, size - 1] = np.arange(size, dtype=np.uint8) + 50  # left col
    f[size - 1, size - 1] = 99  # corner
    return f


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            intra_predict(np.zeros((32, 32), dtype=np.uint8), 1, 1, "diagonal")

    def test_vertical_copies_top_row(self):
        f = frame_with_borders()
        pred = intra_predict(f, 1, 1, "vertical")
        for row in range(16):
            assert np.array_equal(pred[row], f[15, 16:32])

    def test_horizontal_copies_left_column(self):
        f = frame_with_borders()
        pred = intra_predict(f, 1, 1, "horizontal")
        for col in range(16):
            assert np.array_equal(pred[:, col], f[16:32, 15])

    def test_dc_is_mean_of_neighbours(self):
        f = frame_with_borders()
        pred = intra_predict(f, 1, 1, "dc")
        expected = int(np.mean(np.concatenate([
            f[15, 16:32].astype(int), f[16:32, 15].astype(int)
        ])))
        assert (pred == expected).all()

    def test_tm_formula(self):
        f = frame_with_borders()
        pred = intra_predict(f, 1, 1, "tm")
        top = f[15, 16:32].astype(int)
        left = f[16:32, 15].astype(int)
        expected = np.clip(left[:, None] + top[None, :] - 99, 0, 255)
        assert np.array_equal(pred, expected.astype(np.uint8))

    def test_top_left_block_uses_defaults(self):
        f = np.full((32, 32), 77, dtype=np.uint8)
        pred = intra_predict(f, 0, 0, "dc")
        assert (pred == 128).all()

    def test_prediction_in_uint8_range(self, rng):
        f = rng.integers(0, 256, size=(64, 64), dtype=np.uint8)
        for mode in INTRA_MODES:
            pred = intra_predict(f, 2, 2, mode)
            assert pred.dtype == np.uint8


class TestModeDecision:
    def test_picks_vertical_for_vertical_content(self):
        f = np.zeros((32, 32), dtype=np.uint8)
        f[:, 16:] = np.tile(np.arange(16, dtype=np.uint8) * 10, (32, 1))
        target = f[16:32, 16:32]
        mode, pred, cost = best_intra_mode(f, target, 1, 1)
        assert mode == "vertical"
        assert cost == 0

    def test_picks_horizontal_for_horizontal_content(self):
        f = np.zeros((32, 32), dtype=np.uint8)
        f[16:, :] = np.tile((np.arange(16, dtype=np.uint8) * 9)[:, None], (1, 32))
        target = f[16:32, 16:32]
        mode, _, cost = best_intra_mode(f, target, 1, 1)
        assert mode == "horizontal"
        assert cost == 0

    def test_returns_minimum_cost(self, rng):
        f = rng.integers(0, 256, size=(32, 32), dtype=np.uint8)
        target = rng.integers(0, 256, size=(16, 16), dtype=np.uint8)
        _, _, best = best_intra_mode(f, target, 1, 1)
        for mode in INTRA_MODES:
            pred = intra_predict(f, 1, 1, mode)
            cost = int(np.abs(pred.astype(int) - target.astype(int)).sum())
            assert best <= cost
