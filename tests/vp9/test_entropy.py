"""Unit + property tests for the binary range coder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.vp9.entropy import AdaptiveBit, RangeDecoder, RangeEncoder


def roundtrip(bits, probs=None):
    probs = probs or [128] * len(bits)
    enc = RangeEncoder()
    for bit, p in zip(bits, probs):
        enc.encode(bit, p)
    data = enc.finish()
    dec = RangeDecoder(data)
    return [dec.decode(p) for p in probs], data


class TestRangeCoder:
    def test_empty_stream(self):
        enc = RangeEncoder()
        assert isinstance(enc.finish(), bytes)

    def test_simple_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        decoded, _ = roundtrip(bits)
        assert decoded == bits

    def test_skewed_probability_roundtrip(self):
        bits = [0] * 100 + [1] + [0] * 100
        decoded, _ = roundtrip(bits, [250] * len(bits))
        assert decoded == bits

    def test_skewed_probability_compresses(self):
        """Coding mostly-zero bits at P(0)=250/256 must take far fewer
        than 1 bit per symbol."""
        bits = [0] * 1000
        _, data = roundtrip(bits, [250] * 1000)
        assert len(data) < 1000 / 8 / 2

    def test_wrong_probability_expands(self):
        bits = [1] * 200  # coded as if 1 were rare
        _, data = roundtrip(bits, [250] * 200)
        assert len(data) > 200 / 8

    def test_invalid_probability(self):
        enc = RangeEncoder()
        with pytest.raises(ValueError):
            enc.encode(0, 0)
        with pytest.raises(ValueError):
            enc.encode(0, 256)

    def test_encode_after_finish_rejected(self):
        enc = RangeEncoder()
        enc.finish()
        with pytest.raises(RuntimeError):
            enc.encode(1, 128)

    def test_literal_roundtrip(self):
        enc = RangeEncoder()
        enc.encode_literal(0xABC, 12)
        enc.encode_literal(5, 3)
        dec = RangeDecoder(enc.finish())
        assert dec.decode_literal(12) == 0xABC
        assert dec.decode_literal(3) == 5

    @settings(max_examples=40)
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), max_size=300),
        prob=st.integers(min_value=1, max_value=255),
    )
    def test_roundtrip_property(self, bits, prob):
        decoded, _ = roundtrip(bits, [prob] * len(bits))
        assert decoded == bits

    @settings(max_examples=20)
    @given(
        pairs=st.lists(
            st.tuples(st.integers(min_value=0, max_value=1),
                      st.integers(min_value=1, max_value=255)),
            max_size=200,
        )
    )
    def test_varying_probabilities_property(self, pairs):
        bits = [b for b, _ in pairs]
        probs = [p for _, p in pairs]
        decoded, _ = roundtrip(bits, probs)
        assert decoded == bits


class TestAdaptiveBit:
    def test_starts_at_half(self):
        assert AdaptiveBit().prob0 == 128

    def test_adapts_toward_zeros(self):
        m = AdaptiveBit()
        for _ in range(50):
            m.update(0)
        assert m.prob0 > 200

    def test_adapts_toward_ones(self):
        m = AdaptiveBit()
        for _ in range(50):
            m.update(1)
        assert m.prob0 < 50

    def test_probability_clamped(self):
        m = AdaptiveBit()
        for _ in range(10_000):
            m.update(0)
        assert 1 <= m.prob0 <= 255

    def test_halving_keeps_model_adaptive(self):
        m = AdaptiveBit()
        for _ in range(2000):
            m.update(0)
        for _ in range(600):
            m.update(1)
        assert m.prob0 < 200  # reacted to the shift

    def test_adaptive_roundtrip(self):
        bits = ([0] * 20 + [1] * 5) * 8
        enc = RangeEncoder()
        model = AdaptiveBit()
        for b in bits:
            enc.encode_adaptive(b, model)
        dec = RangeDecoder(enc.finish())
        model2 = AdaptiveBit()
        assert [dec.decode_adaptive(model2) for _ in bits] == bits

    def test_adaptive_beats_static_on_skewed_data(self):
        bits = [0] * 1900 + [1] * 100
        enc_a = RangeEncoder()
        model = AdaptiveBit()
        for b in bits:
            enc_a.encode_adaptive(b, model)
        adaptive_len = len(enc_a.finish())
        enc_s = RangeEncoder()
        for b in bits:
            enc_s.encode(b, 128)
        static_len = len(enc_s.finish())
        assert adaptive_len < static_len / 2
