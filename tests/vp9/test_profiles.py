"""Unit + calibration tests for the VP9 analytic profiles."""

import pytest

from repro.core.workload import characterize
from repro.workloads.vp9.profiles import (
    decoder_functions,
    encoder_functions,
    profile_deblocking_filter,
    profile_motion_estimation,
    profile_sub_pixel_interpolation,
)


class TestScaling:
    def test_subpel_scales_with_pixels(self):
        hd = profile_sub_pixel_interpolation(1280, 720, 10)
        uhd = profile_sub_pixel_interpolation(3840, 2160, 10)
        assert uhd.dram_bytes == pytest.approx(hd.dram_bytes * 9, rel=0.01)

    def test_profiles_scale_with_frames(self):
        one = profile_deblocking_filter(1280, 720, 1)
        ten = profile_deblocking_filter(1280, 720, 10)
        assert ten.dram_bytes == pytest.approx(10 * one.dram_bytes)

    def test_all_targets_memory_intensive(self):
        assert profile_sub_pixel_interpolation(3840, 2160, 10).mpki > 10
        assert profile_deblocking_filter(3840, 2160, 10).mpki > 10
        assert profile_motion_estimation(1280, 720, 10).mpki > 10

    def test_me_searches_three_references(self):
        p = profile_motion_estimation(1280, 720, 1)
        pixels = 1280 * 720
        assert p.dram_bytes == pytest.approx(pixels * 1.6 * 3)


class TestDecoderDecomposition:
    @pytest.fixture(scope="class")
    def ch(self):
        return characterize("dec", decoder_functions(3840, 2160, 20))

    def test_six_functions(self):
        names = [f.name for f in decoder_functions(3840, 2160, 1)]
        assert names == [
            "sub_pixel_interpolation", "other_mc", "deblocking_filter",
            "entropy_decoder", "inverse_transform", "other",
        ]

    def test_figure10_shares(self, ch):
        s = ch.energy_shares()
        assert s["sub_pixel_interpolation"] == pytest.approx(0.375, abs=0.09)
        assert s["deblocking_filter"] == pytest.approx(0.297, abs=0.07)
        mc_total = s["sub_pixel_interpolation"] + s["other_mc"]
        assert mc_total == pytest.approx(0.534, abs=0.09)

    def test_figure11_movement(self, ch):
        assert ch.data_movement_fraction == pytest.approx(0.635, abs=0.07)
        assert ch.movement_fraction_of_function(
            "sub_pixel_interpolation"
        ) == pytest.approx(0.653, abs=0.09)

    def test_mc_and_deblock_dominate_movement(self, ch):
        """Paper: 80.4% of decoder data movement comes from MC plus the
        deblocking filter."""
        movement = ch.total_breakdown.data_movement
        mc_deblock = (
            ch.movement_share_of_workload("sub_pixel_interpolation")
            + ch.movement_share_of_workload("other_mc")
            + ch.movement_share_of_workload("deblocking_filter")
        ) * ch.total_energy_j
        assert mc_deblock / movement == pytest.approx(0.804, abs=0.12)

    def test_entropy_decoder_cache_resident(self, ch):
        assert ch.movement_fraction_of_function("entropy_decoder") < 0.5


class TestEncoderDecomposition:
    @pytest.fixture(scope="class")
    def ch(self):
        return characterize("enc", encoder_functions(1280, 720, 10))

    def test_figure15_me_share(self, ch):
        assert ch.energy_share("motion_estimation") == pytest.approx(0.396, abs=0.08)

    def test_figure15_movement(self, ch):
        assert ch.data_movement_fraction == pytest.approx(0.591, abs=0.08)

    def test_me_is_top_consumer(self, ch):
        shares = ch.energy_shares()
        assert max(shares, key=shares.get) == "motion_estimation"

    def test_minor_functions_below_me(self, ch):
        """Intra prediction, transform, quantization each stay under ~12%
        (paper: none individually above 9%)."""
        s = ch.energy_shares()
        for name in ("intra_prediction", "transform", "quantization"):
            assert s[name] < 0.15, name
