"""Unit + property tests for bit I/O."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.vp9.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_single_byte(self):
        w = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 1, 0):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10101010])

    def test_partial_byte_zero_padded(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == bytes([0b10000000])

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b1011, 4)
        assert w.getvalue() == bytes([0b10110000])

    def test_value_too_large(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(16, 4)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_len_counts_bits(self):
        w = BitWriter()
        w.write_bits(0, 11)
        assert len(w) == 11


class TestBitReader:
    def test_reads_what_was_written(self):
        w = BitWriter()
        w.write_bits(0b110010111, 9)
        r = BitReader(w.getvalue())
        assert r.read_bits(9) == 0b110010111

    def test_reads_past_end_return_zero(self):
        r = BitReader(b"\xff")
        assert r.read_bits(8) == 0xFF
        assert r.read_bits(8) == 0

    def test_bits_read_counter(self):
        r = BitReader(b"\x00\x00")
        r.read_bits(5)
        assert r.bits_read == 5

    @given(values=st.lists(st.tuples(st.integers(min_value=0, max_value=2**16 - 1),
                                     st.integers(min_value=16, max_value=20)),
                           min_size=0, max_size=50))
    def test_roundtrip_property(self, values):
        w = BitWriter()
        for value, width in values:
            w.write_bits(value, width)
        r = BitReader(w.getvalue())
        for value, width in values:
            assert r.read_bits(width) == value
