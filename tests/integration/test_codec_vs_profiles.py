"""Integration: the functional codec's measured statistics support the
analytic per-pixel constants used by the characterization profiles."""

import pytest

from repro.workloads.vp9.decoder import decode_video
from repro.workloads.vp9.encoder import encode_video
from repro.workloads.vp9.profiles import INTER_FRACTION
from repro.workloads.vp9.video import synthetic_video


@pytest.fixture(scope="module")
def run():
    clip = synthetic_video(96, 96, 8, motion=3.1, objects=5, noise=1.5, seed=21)
    encoded, encoder = encode_video(clip, qstep=20)
    decoded, decoder = decode_video(encoded)
    return clip, encoder, decoder


class TestInterFraction:
    def test_steady_state_mostly_inter(self, run):
        """The profiles assume ~85% of macroblocks are inter-predicted in
        steady state; the functional codec on moving content agrees
        (excluding the all-intra key frame)."""
        _, encoder, _ = run
        non_key_mbs = encoder.stats.macroblocks * 7 // 8
        inter_fraction = encoder.stats.inter_macroblocks / non_key_mbs
        assert inter_fraction == pytest.approx(INTER_FRACTION, abs=0.2)


class TestReferenceTraffic:
    def test_reference_pixels_per_pixel_bounded(self, run):
        """The HW decoder model uses 2.9 reference pixels per decoded
        pixel (paper); the functional decoder must land in the same
        regime (1-3x, depending on the sub-pel mix)."""
        _, _, decoder = run
        assert 0.5 <= decoder.stats.reference_pixels_per_pixel <= 3.2

    def test_subpel_blocks_present(self, run):
        """Sub-pixel interpolation must actually occur (the dominant
        decoder PIM target is not a dead code path)."""
        _, _, decoder = run
        assert decoder.stats.subpel_blocks > 0


class TestDeblocking:
    def test_filter_fires_on_coded_content(self, run):
        _, _, decoder = run
        assert decoder.stats.deblock.edges_filtered > 0

    def test_encoder_and_decoder_filter_identically(self, run):
        _, encoder, decoder = run
        assert encoder.stats.deblock.edges_filtered == decoder.stats.deblock.edges_filtered


class TestSearchEffort:
    def test_sad_evaluations_per_block_match_profile_scale(self, run):
        """The ME profile assumes ~12 SAD probes per macroblock per
        reference (diamond search with early termination); the functional
        encoder must be within a small factor."""
        _, encoder, _ = run
        inter_blocks = max(encoder.stats.inter_macroblocks, 1)
        probes = encoder.stats.search.sad_evaluations / (inter_blocks * 3)
        assert 3 <= probes <= 60
