"""End-to-end integration: the paper's top-level claims hold across the
whole pipeline (workloads -> profiles -> machine models -> analysis)."""

import pytest

from repro.analysis.headline import all_pim_targets, workload_characterizations
from repro.core.runner import ExperimentRunner
from repro.energy.area import AreaModel


@pytest.fixture(scope="module")
def sweep():
    return ExperimentRunner().evaluate(all_pim_targets())


class TestHeadlineClaims:
    def test_ten_pim_targets(self, sweep):
        """4 browser + 2 TF + 3 video kernels (compression/decompression
        are counted separately, as in Figure 18)."""
        assert len(sweep.comparisons) == 9

    def test_every_target_memory_intensive(self, sweep):
        for c in sweep.comparisons:
            assert c.target.profile.mpki > 10, c.target.name

    def test_no_target_slows_down(self, sweep):
        """Section 3.2's criterion 5 holds for the accepted target set."""
        for c in sweep.comparisons:
            assert c.pim_core_speedup >= 0.99, c.target.name
            assert c.pim_acc_speedup >= 1.0, c.target.name

    def test_all_accelerators_fit_vault_budget(self, sweep):
        area = AreaModel()
        for c in sweep.comparisons:
            check = area.check_accelerator(c.target.accelerator_key)
            assert check.fits, c.target.name

    def test_paper_headline_energy_reductions(self, sweep):
        assert sweep.mean_pim_core_energy_reduction == pytest.approx(0.491, abs=0.10)
        assert sweep.mean_pim_acc_energy_reduction == pytest.approx(0.554, abs=0.10)

    def test_acc_saves_at_least_as_much_as_core(self, sweep):
        for c in sweep.comparisons:
            assert c.pim_acc_energy_reduction >= c.pim_core_energy_reduction - 1e-9

    def test_movement_dominates_every_workload(self):
        """62.7% average; no workload below 40%."""
        characterizations = workload_characterizations()
        fractions = [c.data_movement_fraction for c in characterizations]
        assert sum(fractions) / len(fractions) == pytest.approx(0.627, abs=0.08)
        assert min(fractions) > 0.40

    def test_twelve_workloads_characterized(self):
        """6 pages + tab switching + 4 networks + decode + encode."""
        assert len(workload_characterizations()) == 13
