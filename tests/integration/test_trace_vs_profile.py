"""Integration: trace-driven cache simulation validates the analytic
locality classes used by the profiles (stand-in for the paper's
performance-counter cross-checks)."""

import pytest

from repro.config import CACHE_LINE_BYTES
from repro.sim.cache import CacheHierarchy
from repro.sim.trace import AddressSpace, TraceRecorder
from repro.sim.profile import KernelProfile

MB = 1024 * 1024


class TestStreamingClass:
    def test_streaming_profile_matches_simulated_stream(self):
        """A memcopy-style kernel: analytic streaming profile and the
        simulated trace agree on DRAM traffic within write-allocate
        effects."""
        size = 8 * MB
        space = AddressSpace()
        src, dst = space.alloc(size), space.alloc(size)
        rec = TraceRecorder(granularity=64)
        for offset in range(0, size, 4096):
            rec.read(src + offset, 4096)
            rec.write(dst + offset, 4096)
        stats = CacheHierarchy().replay(rec.trace())
        profile = KernelProfile.streaming("copy", size, size, ops_per_byte=0.0)
        # Reads: src + dst RFO; writes: dst writeback.
        assert stats.dram_line_writes * CACHE_LINE_BYTES == size
        assert profile.dram_bytes == 2 * size
        assert profile.llc_misses == pytest.approx(
            stats.dram_line_writes + stats.dram_line_reads / 2
        )


class TestCacheResidentClass:
    def test_reuse_does_not_add_traffic(self):
        size = 256 * 1024  # LLC-resident
        rec = TraceRecorder(granularity=64)
        for _ in range(6):
            rec.read(0, size)
        stats = CacheHierarchy().replay(rec.trace())
        profile = KernelProfile.cache_resident(
            "hot", bytes_touched=size, reuse_factor=6, ops_per_byte=1.0
        )
        assert stats.dram_line_reads * CACHE_LINE_BYTES == size
        assert profile.dram_bytes == size


class TestScatteredClass:
    def test_random_touches_miss(self, rng):
        """Random 64 B touches over a 64 MB region: virtually every touch
        is a DRAM access, as the scattered profile assumes."""
        touches = 20_000
        region = 64 * MB
        addresses = rng.integers(0, region // 64, size=touches) * 64
        rec = TraceRecorder(granularity=64)
        for a in addresses:
            rec.read(int(a), 64)
        stats = CacheHierarchy().replay(rec.trace())
        profile = KernelProfile.scattered(
            "rand", touches=touches, bytes_per_touch=64, ops_per_byte=0.5,
        )
        measured_miss_rate = stats.llc.misses / touches
        assert measured_miss_rate > 0.95
        assert profile.dram_bytes >= touches * 64


class TestMpkiCriterion:
    def test_streaming_kernel_passes_paper_threshold_in_simulation(self):
        """MPKI > 10 measured by simulation, not just asserted by the
        analytic profile."""
        size = 4 * MB
        rec = TraceRecorder(granularity=64)
        rec.read(0, size)
        profile = KernelProfile.streaming("k", size, 0, ops_per_byte=0.3,
                                          instruction_overhead=0.1)
        stats = CacheHierarchy().replay(
            rec.trace(), instructions_hint=profile.instructions
        )
        assert stats.mpki() > 10
