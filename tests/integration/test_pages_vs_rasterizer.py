"""Integration: the analytic page models' blit mixes are backed by the
functional display-list rasterizer."""


from repro.workloads.chrome.blitter import profile_color_blitting
from repro.workloads.chrome.pages import PAGES
from repro.workloads.chrome.rasterizer import rasterize, synthetic_page_paint


def painted_blend_share(text_fraction: float, image_fraction: float) -> float:
    _, stats = rasterize(
        synthetic_page_paint(
            512, 384, text_fraction=text_fraction, image_fraction=image_fraction,
            seed=7,
        )
    )
    return stats.pixels_blended / max(stats.total_pixels, 1)


class TestBlendFractionBacking:
    def test_docs_like_paint_is_blend_heavy(self):
        """A text-dominated paint produces a blend-heavy mix.  The share
        is diluted below the page model's 0.75 by the one-time background
        and card fills (which the scroll model amortizes away), but text
        paints must still blend several times more than media paints."""
        docs_like = painted_blend_share(text_fraction=0.75, image_fraction=0.05)
        media_like = painted_blend_share(text_fraction=0.1, image_fraction=0.6)
        assert docs_like > 0.3
        assert docs_like > 4 * media_like
        # Ordering matches the page-model parameters.
        assert (
            PAGES["Google Docs"].blend_fraction > 0.5
        )  # the model's scroll-steady-state value

    def test_media_paint_is_copy_heavy(self):
        share = painted_blend_share(text_fraction=0.1, image_fraction=0.6)
        assert share < 0.3

    def test_profiles_from_painted_stats_are_pim_candidates(self):
        """Blit statistics measured from real rasterization -- not just
        the analytic page parameters -- still satisfy the Section 3.2
        memory-intensity criterion when scaled to page-sized batches."""
        _, stats = rasterize(synthetic_page_paint(1366, 768, seed=1))
        profile = profile_color_blitting(stats)
        assert profile.mpki > 8
        assert profile.dram_bytes > 1024 * 1024
