"""Why the data-reorganization kernels exist.

Texture tiling and gemmlowp packing are pure data movement -- the paper
offloads them because they are expensive, but they exist because they
make *later* accesses cache-friendly.  These tests verify that rationale
with the cache simulator: the reorganized layouts must measurably cut
misses for the consumer (the GPU compositor / the GEMM kernel).
"""

import pytest

from repro.config import CacheConfig, SocConfig
from repro.sim.cache import CacheHierarchy
from repro.workloads.chrome.texture import compositing_trace
from repro.workloads.tensorflow.access_patterns import (
    gemm_lhs_trace,
    pack_then_kernel_traffic,
)

KB = 1024


def gpu_like_soc():
    """A GPU-texture-cache-sized hierarchy (8 kB L1, 16 kB L2)."""
    return SocConfig(
        l1=CacheConfig(size_bytes=8 * KB, associativity=4),
        l2=CacheConfig(size_bytes=16 * KB, associativity=8),
    )


class TestTextureTilingRationale:
    def test_tiled_layout_cuts_compositing_misses(self):
        """Vertical sampling of a 512x512 texture through a small GPU
        cache: the tiled layout must fetch each byte ~once while the
        linear layout thrashes (Section 4.2.2's motivation)."""
        linear = CacheHierarchy(gpu_like_soc()).replay(
            compositing_trace(512, 512, tiled=False)
        )
        tiled = CacheHierarchy(gpu_like_soc()).replay(
            compositing_trace(512, 512, tiled=True)
        )
        assert tiled.dram_bytes < linear.dram_bytes / 2
        texture_bytes = 512 * 512 * 4
        # Tiled: compulsory traffic only (within 15%).
        assert tiled.dram_bytes <= texture_bytes * 1.15

    def test_layouts_equal_on_huge_cache(self):
        """With a cache bigger than the texture the layouts tie --
        the benefit is purely about capturing reuse, not total bytes."""
        big = SocConfig()  # 2 MB LLC > 1 MB texture
        linear = CacheHierarchy(big).replay(compositing_trace(512, 512, False))
        tiled = CacheHierarchy(big).replay(compositing_trace(512, 512, True))
        assert linear.dram_bytes == pytest.approx(tiled.dram_bytes, rel=0.1)


class TestPackingRationale:
    def test_wide_microkernel_thrashes_unpacked_l1(self):
        """A 16-row micro-kernel over a k=8192 (power-of-two leading
        dimension) operand: the 16 rows map onto the same L1 sets and
        exceed the 4-way associativity -- every access conflicts.  The
        packed layout streams with the normal 25% miss rate (one miss
        per 64 B line at 16 B granules)."""
        m, k = 256, 8192
        unpacked = CacheHierarchy().replay(
            gemm_lhs_trace(m, k, 1, packed=False, panel_rows=16)
        )
        packed = CacheHierarchy().replay(
            gemm_lhs_trace(m, k, 1, packed=True, panel_rows=16)
        )
        assert unpacked.l1.miss_rate > 0.9
        assert packed.l1.miss_rate < 0.3

    def test_narrow_microkernel_has_no_conflicts(self):
        """Within the associativity (4 rows, 4 ways) the layouts tie --
        the conflict effect is specifically about wide kernels."""
        unpacked = CacheHierarchy().replay(
            gemm_lhs_trace(256, 8192, 1, packed=False, panel_rows=4)
        )
        packed = CacheHierarchy().replay(
            gemm_lhs_trace(256, 8192, 1, packed=True, panel_rows=4)
        )
        assert unpacked.l1.misses == packed.l1.misses

    def test_packing_pays_for_itself(self):
        """The paper's trade: one streaming reorganization pass buys
        conflict-free kernel traversals; totals (pack pass included)
        must favour packing."""
        result = pack_then_kernel_traffic(m=256, k=8192, n_blocks=2)
        assert result["packed_total_misses"] < result["unpacked_l1_misses"]

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            gemm_lhs_trace(0, 10, 1, packed=True)
        with pytest.raises(ValueError):
            gemm_lhs_trace(10, 10, 1, packed=True, panel_rows=0)
