"""The examples stay runnable and the public API surface stays intact."""

import importlib
import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert {"quickstart", "browser_analysis", "mobile_inference",
                "video_pipeline", "custom_workload", "extensions"} <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_runs(self, path, capsys):
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced real output


class TestPublicApi:
    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.config",
            "repro.energy",
            "repro.sim",
            "repro.core",
            "repro.analysis",
            "repro.workloads.chrome",
            "repro.workloads.tensorflow",
            "repro.workloads.vp9",
        ],
    )
    def test_all_names_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), "%s.%s missing" % (module, name)

    def test_top_level_convenience(self):
        import repro

        runner = repro.ExperimentRunner()
        assert runner is not None
        assert repro.default_system().bandwidth_ratio == pytest.approx(8.0)

    def test_version(self):
        import repro

        assert repro.__version__
