"""CLI error contract: user errors exit 2 with one actionable line.

``--strict`` on ``evaluate``/``figures`` arms the invariant layer for
the whole command; any ``ConfigError``/``ValueError``/``InvariantError``
reaching ``main()`` becomes a single ``error: ...`` line on stderr and
exit code 2 — never a traceback.
"""

from __future__ import annotations

from repro.cli import main
from repro.validate import InvariantError, strict_enabled


class TestErrorExitCode:
    def test_degenerate_codec_geometry_exits_2(self, capsys):
        assert main(["codec", "--width", "0"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error: ")
        assert captured.err.count("\n") == 1  # exactly one line
        assert "width" in captured.err

    def test_invariant_error_exits_2(self, capsys, monkeypatch):
        import repro.analysis.headline as headline

        def broken():
            raise InvariantError("cache.l1.accounting", "hits+misses drifted")

        monkeypatch.setattr(headline, "workload_characterizations", broken)
        assert main(["characterize"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "cache.l1.accounting" in err

    def test_config_error_exits_2(self, capsys, monkeypatch):
        import repro.analysis.headline as headline

        def broken():
            from repro.config import CacheConfig

            CacheConfig(size_bytes=0, associativity=4)

        monkeypatch.setattr(headline, "workload_characterizations", broken)
        assert main(["characterize"]) == 2
        err = capsys.readouterr().err
        assert "CacheConfig.size_bytes" in err


class TestStrictFlag:
    def test_strict_flag_arms_strict_mode_for_the_command(self, monkeypatch, capsys):
        import repro.core.runner as runner_mod
        import repro.workloads.vp9.targets as vp9_targets

        seen = {}

        class StubResult:
            names = ["stub"]
            mean_pim_core_energy_reduction = 0.5
            mean_pim_acc_energy_reduction = 0.6
            mean_pim_core_speedup = 1.5
            mean_pim_acc_speedup = 2.0
            degraded = False
            failures = []

            @staticmethod
            def rows():
                return []

        class StubRunner:
            def evaluate(self, targets, jobs=1, **kwargs):
                seen["strict"] = strict_enabled()
                return StubResult()

        monkeypatch.setattr(runner_mod, "ExperimentRunner", StubRunner)
        monkeypatch.setattr(vp9_targets, "video_pim_targets", lambda: ["t"])

        assert main(["evaluate", "--workload", "vp9", "--strict"]) == 0
        assert seen["strict"] is True
        capsys.readouterr()

        assert main(["evaluate", "--workload", "vp9"]) == 0
        assert seen["strict"] is strict_enabled()  # back to ambient mode

    def test_evaluate_strict_end_to_end(self, capsys):
        """The real Table-1 chrome evaluation is violation-free under
        --strict: it must exit 0 and print the normal report."""
        assert main(["evaluate", "--workload", "chrome", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "texture_tiling" in out
        assert "mean energy reduction" in out

    def test_figures_accept_strict(self, capsys):
        assert main(["figures", "--figure", "Table 1", "--strict"]) == 0
        assert "Table 1" in capsys.readouterr().out
