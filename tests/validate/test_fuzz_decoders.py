"""Fault injection: hostile bytes and degenerate configs fail *cleanly*.

The contract under test (see ``repro.validate.errors``): any input — a
corrupted LZO stream, a garbage bitstream, a fuzzed config — may be
rejected only with ``ValueError``/``ConfigError``.  ``IndexError``,
``ZeroDivisionError``, ``TypeError``, ``MemoryError``, and
``InvariantError`` escaping a decoder are model bugs, and pytest will
report them as such because only ``ValueError`` is caught here.

Example counts are governed by the central Hypothesis profiles in
``tests/conftest.py`` (``REPRO_HYPOTHESIS_PROFILE=soak`` for the deep
CI run), so no test overrides ``max_examples``.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import CacheConfig, SocConfig
from repro.sim.cache import CacheHierarchy
from repro.sim.timing import TimingSimulator
from repro.sim.trace import MemoryTrace, TraceRecorder
from repro.validate import ConfigError
from repro.workloads.chrome import lzo
from repro.workloads.vp9.bitio import BitReader, BitWriter


@contextlib.contextmanager
def small_output_cap(cap: int = 1 << 16):
    """Shrink the LZO expansion cap so fuzzing both exercises the limit
    and never pays for a near-1GB (legal-sized) hostile expansion."""
    previous = lzo.MAX_OUTPUT_BYTES
    lzo.MAX_OUTPUT_BYTES = cap
    try:
        yield
    finally:
        lzo.MAX_OUTPUT_BYTES = previous


class TestLzoFuzz:
    @given(data=st.binary(max_size=2048))
    def test_decompress_rejects_cleanly_and_paths_agree(self, data):
        """Arbitrary bytes: both decompress paths either produce the same
        output or raise the same offset-bearing ValueError."""

        def run(fast):
            with small_output_cap():
                try:
                    return lzo.decompress(data, fast=fast)[0]
                except ValueError as exc:
                    assert "offset" in str(exc)
                    return ("rejected", str(exc))

        assert run(fast=True) == run(fast=False)

    @given(data=st.binary(max_size=4096))
    def test_roundtrip_survives_fuzz(self, data):
        compressed, _ = lzo.compress(data)
        for fast in (True, False):
            restored, _ = lzo.decompress(compressed, fast=fast)
            assert restored == data

    @given(corrupt_at=st.integers(min_value=0, max_value=200),
           new_byte=st.integers(min_value=0, max_value=255))
    def test_single_byte_corruption_never_crashes(self, corrupt_at, new_byte):
        compressed, _ = lzo.compress(b"the quick brown fox " * 32)
        buffer = bytearray(compressed)
        buffer[corrupt_at % len(buffer)] = new_byte
        for fast in (True, False):
            with small_output_cap():
                try:
                    lzo.decompress(bytes(buffer), fast=fast)
                except ValueError as exc:
                    assert "offset" in str(exc)

    def test_varint_bomb_is_rejected_not_allocated(self):
        """A crafted varint demanding a multi-TB match copy must raise a
        clean ValueError instead of dying with MemoryError."""
        extra = bytearray()
        lzo._emit_varint((1 << 42), extra)  # ~4 TB match length
        bomb = (
            bytes([0x00, 0x41])           # 1-byte literal: 'A'
            + bytes([0x80 | 127]) + bytes(extra)
            + bytes([0x01, 0x00])         # distance 1 (valid)
        )
        for fast in (True, False):
            with pytest.raises(ValueError, match="expands output beyond"):
                lzo.decompress(bomb, fast=fast)

    def test_overlong_varint_is_rejected(self):
        bomb = (
            bytes([0x00, 0x41])
            + bytes([0x80 | 127]) + bytes([0xFF] * 12)
            + bytes([0x01, 0x00])
        )
        for fast in (True, False):
            with pytest.raises(ValueError, match="varint too long"):
                lzo.decompress(bomb, fast=fast)


class TestBitioFuzz:
    @given(fields=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1 << 24),
                  st.integers(min_value=0, max_value=25)),
        max_size=50,
    ))
    def test_writer_reader_roundtrip(self, fields):
        writer = BitWriter()
        written = []
        for value, count in fields:
            value &= (1 << count) - 1
            writer.write_bits(value, count)
            written.append((value, count))
        reader = BitReader(writer.getvalue())
        for value, count in written:
            assert reader.read_bits(count) == value

    @given(value=st.integers(min_value=-5, max_value=1 << 30),
           count=st.integers(min_value=-3, max_value=32))
    def test_write_bits_rejects_out_of_range_cleanly(self, value, count):
        writer = BitWriter()
        try:
            writer.write_bits(value, count)
        except ValueError:
            assert value < 0 or count < 0 or value >> count
        else:
            assert value >= 0 and count >= 0 and value >> count == 0

    @given(data=st.binary(max_size=64),
           extra=st.integers(min_value=0, max_value=200))
    def test_reading_past_the_end_yields_zero_bits(self, data, extra):
        reader = BitReader(data)
        reader.read_bits(len(data) * 8)
        assert reader.read_bits(extra) == 0


class TestConfigSpaceFuzz:
    @given(size=st.integers(min_value=-64, max_value=1 << 16),
           assoc=st.integers(min_value=-2, max_value=64),
           line=st.integers(min_value=-2, max_value=512))
    def test_accepted_cache_config_is_simulatable(self, size, assoc, line):
        """Any CacheConfig that passes validation must actually work: a
        replay through it cannot divide by zero or index out of range."""
        try:
            config = CacheConfig(
                size_bytes=size, associativity=assoc, line_bytes=line
            )
        except ConfigError as exc:
            assert exc.field in ("size_bytes", "associativity", "line_bytes")
            return
        assert config.num_sets >= 1
        recorder = TraceRecorder(granularity=8)
        recorder.read(0, 1024)
        stats = CacheHierarchy(SocConfig(l1=config)).replay_fast(
            recorder.trace(), strict=True
        )
        assert stats.l1.accesses == 128

    @given(addresses=st.lists(
        st.integers(min_value=0, max_value=1 << 12), max_size=64,
    ), data=st.data())
    def test_strict_replay_holds_on_arbitrary_traces(self, addresses, data):
        """Strict-mode conservation invariants are theorems, not tuning:
        no trace may trip them (an InvariantError here is a model bug)."""
        writes = [data.draw(st.booleans()) for _ in addresses]
        trace = MemoryTrace(
            addresses=np.array(addresses, dtype=np.uint64),
            is_write=np.array(writes, dtype=bool),
        )
        soc = SocConfig(
            l1=CacheConfig(size_bytes=256, associativity=2),
            l2=CacheConfig(size_bytes=1024, associativity=4),
        )
        CacheHierarchy(soc).replay(trace, strict=True)
        CacheHierarchy(soc).replay_fast(trace, strict=True)
        TimingSimulator(soc).replay(trace, strict=True)
        TimingSimulator(soc).replay_fast(trace, strict=True)

    @given(base=st.integers(min_value=-(1 << 40), max_value=1 << 40),
           size=st.integers(min_value=0, max_value=4096))
    def test_recorder_rejects_negative_bases_cleanly(self, base, size):
        """Negative addresses must fail at record time with ValueError,
        not at materialization with numpy's OverflowError."""
        recorder = TraceRecorder(granularity=8)
        try:
            recorder.read(base, size)
        except ValueError:
            assert base < 0
            return
        assert base >= 0
        recorder.trace()
