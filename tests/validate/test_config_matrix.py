"""Degenerate-config matrix: every numeric knob rejects 0/negative/NaN.

One parametrized case per (dataclass, field, poison value).  Each case
asserts the constructor raises :class:`ConfigError` *naming the field*,
so a user who fat-fingers a sweep gets "CacheConfig.associativity = 0:
must be a positive integer" instead of a ZeroDivisionError three layers
down.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    GB,
    BaselineMemoryConfig,
    CacheConfig,
    PimAcceleratorConfig,
    PimCoreConfig,
    SocConfig,
    StackedMemoryConfig,
    SystemConfig,
)
from repro.energy.components import EnergyParameters, default_energy_parameters
from repro.sim.profile import KernelProfile
from repro.sim.timing import TimingParameters
from repro.validate import ConfigError

NAN = float("nan")
INF = float("inf")

#: Poison values for strictly-positive integer fields.
POSITIVE_INT_BAD = (0, -3, 2.5, NAN, True, None)
#: Poison values for strictly-positive float fields.
POSITIVE_BAD = (0, -1.0, NAN, INF, "fast")
#: Poison values for non-negative float fields (0 is legal there).
NON_NEGATIVE_BAD = (-1.0, NAN, INF)

CACHE_BASE = dict(size_bytes=1024, associativity=2)
PROFILE_BASE = dict(
    name="k",
    instructions=100.0,
    mem_instructions=40.0,
    alu_ops=50.0,
    l1_misses=10.0,
    llc_misses=5.0,
    dram_bytes=320.0,
)


def _cases(cls, base, spec):
    for field, bad_values in spec:
        for value in bad_values:
            yield pytest.param(
                cls, base, field, value,
                id="%s-%s-%r" % (cls.__name__, field, value),
            )


MATRIX = [
    *_cases(CacheConfig, CACHE_BASE, [
        ("size_bytes", POSITIVE_INT_BAD),
        ("associativity", POSITIVE_INT_BAD),
        ("line_bytes", POSITIVE_INT_BAD + (48,)),  # 48: not a power of two
        ("hit_latency_cycles", POSITIVE_INT_BAD),
    ]),
    *_cases(SocConfig, {}, [
        ("num_cores", POSITIVE_INT_BAD),
        ("issue_width", POSITIVE_INT_BAD),
        ("frequency_hz", POSITIVE_BAD),
        ("sustained_ipc", POSITIVE_BAD),
    ]),
    *_cases(PimCoreConfig, {}, [
        ("cores_per_vault", POSITIVE_INT_BAD),
        ("issue_width", POSITIVE_INT_BAD),
        ("simd_width", POSITIVE_INT_BAD),
        ("frequency_hz", POSITIVE_BAD),
        ("sustained_ipc", POSITIVE_BAD),
        ("area_mm2", POSITIVE_BAD),
    ]),
    *_cases(PimAcceleratorConfig, {}, [
        ("logic_units", POSITIVE_INT_BAD),
        ("ops_per_unit_per_cycle", POSITIVE_BAD),
        ("frequency_hz", POSITIVE_BAD),
        ("energy_efficiency_vs_cpu", POSITIVE_BAD),
        ("buffer_bytes", POSITIVE_INT_BAD),
    ]),
    *_cases(StackedMemoryConfig, {}, [
        ("capacity_bytes", POSITIVE_INT_BAD),
        ("num_vaults", POSITIVE_INT_BAD),
        ("internal_bandwidth", POSITIVE_BAD),
        ("offchip_bandwidth", POSITIVE_BAD),
        ("logic_layer_area_mm2", POSITIVE_BAD),
    ]),
    *_cases(BaselineMemoryConfig, {}, [
        ("capacity_bytes", POSITIVE_INT_BAD),
        ("bandwidth", POSITIVE_BAD),
        ("scheduler", ("", 42, None)),
    ]),
    *_cases(TimingParameters, {}, [
        ("l1_hit_cycles", POSITIVE_INT_BAD),
        ("llc_hit_cycles", POSITIVE_INT_BAD),
        ("dram_cycles", POSITIVE_INT_BAD),
        ("mshrs", POSITIVE_INT_BAD),
        ("dram_issue_interval_cycles", NON_NEGATIVE_BAD),
    ]),
    *_cases(KernelProfile, PROFILE_BASE, [
        *[
            (name, NON_NEGATIVE_BAD)
            for name in KernelProfile._NON_NEGATIVE_FIELDS
        ],
        ("simd_fraction", (-0.1, 1.5, NAN)),
        ("pim_bytes", (NAN, INF, "lots")),
    ]),
]


class TestDegenerateMatrix:
    @pytest.mark.parametrize("cls,base,field,value", MATRIX)
    def test_poison_value_rejected_naming_the_field(self, cls, base, field, value):
        with pytest.raises(ConfigError) as excinfo:
            cls(**{**base, field: value})
        err = excinfo.value
        assert err.field == field
        assert field in str(err)
        assert cls.__name__ in str(err)

    @pytest.mark.parametrize("cls,base", [
        (CacheConfig, CACHE_BASE),
        (SocConfig, {}),
        (PimCoreConfig, {}),
        (PimAcceleratorConfig, {}),
        (StackedMemoryConfig, {}),
        (BaselineMemoryConfig, {}),
        (SystemConfig, {}),
        (TimingParameters, {}),
        (KernelProfile, PROFILE_BASE),
    ])
    def test_defaults_still_construct(self, cls, base):
        cls(**base)


class TestEnergyParameters:
    @pytest.mark.parametrize(
        "field", [f.name for f in dataclasses.fields(EnergyParameters)]
    )
    @pytest.mark.parametrize("value", [0, -1.0, NAN])
    def test_every_constant_must_be_positive(self, field, value):
        params = dataclasses.asdict(default_energy_parameters())
        params[field] = value
        with pytest.raises(ConfigError) as excinfo:
            EnergyParameters(**params)
        assert excinfo.value.field == field


class TestCrossFieldConstraints:
    def test_cache_geometry_must_divide(self):
        with pytest.raises(ConfigError) as excinfo:
            CacheConfig(size_bytes=1000, associativity=3)
        assert excinfo.value.field == "size_bytes"
        assert "divisible" in str(excinfo.value)

    def test_internal_bandwidth_below_offchip_rejected(self):
        with pytest.raises(ConfigError) as excinfo:
            StackedMemoryConfig(internal_bandwidth=16 * GB)  # offchip is 32 GB
        assert excinfo.value.field == "internal_bandwidth"
        assert "offchip_bandwidth" in str(excinfo.value)

    def test_mem_instructions_cannot_exceed_instructions(self):
        with pytest.raises(ConfigError) as excinfo:
            KernelProfile(**{**PROFILE_BASE, "mem_instructions": 101.0})
        assert excinfo.value.field == "mem_instructions"

    def test_system_config_rejects_wrong_component_type(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(soc="a string, not a SocConfig")
        assert excinfo.value.field == "soc"
        assert "SocConfig" in str(excinfo.value)


class TestLegalEdgeValues:
    def test_unthrottled_dram_channel_is_legal(self):
        assert TimingParameters(dram_issue_interval_cycles=0.0)

    def test_profile_zero_traffic_is_legal(self):
        profile = KernelProfile(**{**PROFILE_BASE, "dram_bytes": 0.0})
        assert profile.bytes_per_instruction == 0.0

    def test_negative_pim_bytes_is_the_default_sentinel(self):
        profile = KernelProfile(**PROFILE_BASE)
        assert profile.pim_bytes == profile.dram_bytes
        explicit = KernelProfile(**{**PROFILE_BASE, "pim_bytes": 128.0})
        assert explicit.pim_bytes == 128.0
