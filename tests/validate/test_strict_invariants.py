"""Strict mode end to end: clean runs publish checks, broken state raises.

The acceptance bar for the validation layer: replaying the default
(Table 1) configuration under ``strict`` publishes ``validate.*.checks``
counters and **zero** ``validate.*.violations`` — and a deliberately
inconsistent energy breakdown both raises :class:`InvariantError` and
leaves the violation counter behind for the run manifest.
"""

from __future__ import annotations

import pytest

from repro.energy.breakdown import EnergyBreakdown
from repro.energy.model import EnergyModel
from repro.obs import recording
from repro.sim.cache import CacheHierarchy
from repro.sim.profile import KernelProfile
from repro.sim.timing import TimingSimulator
from repro.sim.trace import TraceRecorder
from repro.validate import (
    InvariantError,
    resolve_strict,
    set_strict,
    strict_enabled,
    strict_mode,
)


def table1_trace():
    """A mixed trace: streaming read, streaming write, scattered reads."""
    recorder = TraceRecorder(granularity=8)
    recorder.read(0, 64 * 1024)
    recorder.write(1 << 22, 16 * 1024)
    for i in range(200):
        recorder.read((1 << 24) + i * 4096, 64)
    return recorder.trace()


def validate_counters(counters: dict) -> tuple[dict, dict]:
    checks = {k: v for k, v in counters.items()
              if k.startswith("validate.") and k.endswith(".checks")}
    violations = {k: v for k, v in counters.items()
                  if k.startswith("validate.") and k.endswith(".violations")}
    return checks, violations


class TestStrictReplayIsViolationFree:
    @pytest.mark.parametrize("fast", [False, True])
    def test_cache_replay(self, fast):
        trace = table1_trace()
        with recording() as rec:
            hierarchy = CacheHierarchy()  # Table 1 geometry
            (hierarchy.replay_fast if fast else hierarchy.replay)(
                trace, strict=True
            )
        checks, violations = validate_counters(rec.counters.as_dict())
        assert checks, "strict replay must publish validate.*.checks"
        assert violations == {}

    @pytest.mark.parametrize("fast", [False, True])
    def test_timing_replay(self, fast):
        trace = table1_trace()
        with recording() as rec:
            simulator = TimingSimulator()
            (simulator.replay_fast if fast else simulator.replay)(
                trace, strict=True
            )
        checks, violations = validate_counters(rec.counters.as_dict())
        assert checks
        assert violations == {}

    def test_energy_model(self):
        profile = KernelProfile.streaming(
            "tiling", bytes_read=1 << 20, bytes_written=1 << 20, ops_per_byte=1.0
        )
        with recording() as rec, strict_mode():
            model = EnergyModel()
            model.cpu_components(profile, stall_cycles=1e5)
            model.pim_core_components(profile, 1e6, 2e5, stall_cycles=1e4)
            model.pim_accelerator_components(profile)
        checks, violations = validate_counters(rec.counters.as_dict())
        assert len(checks) >= 9  # 3 invariants x 3 execution targets
        assert violations == {}

    def test_non_strict_replay_publishes_no_validate_counters(self):
        with recording() as rec:
            CacheHierarchy().replay_fast(table1_trace(), strict=False)
        assert not any(
            k.startswith("validate.") for k in rec.counters.as_dict()
        )


class TestBrokenStateRaises:
    def test_negative_component_raises_and_publishes(self):
        bad = EnergyBreakdown(cpu=-1.0)
        with recording() as rec:
            with pytest.raises(InvariantError) as excinfo:
                bad.check_invariants("energy.test")
        assert excinfo.value.invariant == "energy.test.components"
        counters = rec.counters.as_dict()
        assert counters["validate.energy.test.components.violations"] == 1
        assert counters["validate.energy.test.components.checks"] == 1

    def test_stall_exceeding_cpu_total_raises(self):
        bad = EnergyBreakdown(cpu=1.0, cpu_stall=2.0)
        with pytest.raises(InvariantError) as excinfo:
            bad.check_invariants()
        assert excinfo.value.invariant == "energy.breakdown.stall_share"

    def test_nan_component_raises(self):
        with pytest.raises(InvariantError):
            EnergyBreakdown(dram=float("nan")).check_invariants()

    def test_strict_energy_model_refuses_nan_stalls(self):
        profile = KernelProfile.streaming(
            "k", bytes_read=1024, bytes_written=0, ops_per_byte=1.0
        )
        with strict_mode():
            with pytest.raises(InvariantError):
                EnergyModel().cpu_components(profile, stall_cycles=float("nan"))

    def test_invariant_error_is_not_a_value_error(self):
        """The fuzz contract depends on this: decoders reject bad *input*
        with ValueError; InvariantError means the *model* broke."""
        assert not issubclass(InvariantError, ValueError)
        with pytest.raises(RuntimeError):
            EnergyBreakdown(cpu=-1.0).check_invariants()


class TestStrictSwitches:
    def test_explicit_flag_beats_global_mode(self):
        with strict_mode(True):
            assert resolve_strict(False) is False
        with strict_mode(False):
            assert resolve_strict(True) is True
            assert resolve_strict(None) is False

    def test_env_var_spellings(self, monkeypatch):
        previous = set_strict(None)
        try:
            for spelling, expected in [
                ("1", True), ("true", True), ("on", True), ("soak", True),
                ("0", False), ("false", False), ("no", False),
                ("off", False), ("", False),
            ]:
                monkeypatch.setenv("REPRO_STRICT", spelling)
                assert strict_enabled() is expected, spelling
            monkeypatch.delenv("REPRO_STRICT")
            assert strict_enabled() is False
        finally:
            set_strict(previous)

    def test_strict_mode_restores_previous_state(self):
        before = strict_enabled()
        with strict_mode(not before):
            assert strict_enabled() is (not before)
        assert strict_enabled() is before

    def test_global_mode_arms_replay(self):
        trace = table1_trace()
        with recording() as rec, strict_mode():
            CacheHierarchy().replay_fast(trace)  # no explicit strict arg
        checks, _ = validate_counters(rec.counters.as_dict())
        assert checks
