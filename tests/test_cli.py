"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_areas(self, capsys):
        assert main(["areas"]) == 0
        out = capsys.readouterr().out
        assert "pim_core" in out
        assert "motion_estimation" in out
        assert "TOO BIG" not in out

    def test_codec(self, capsys):
        assert main(["codec", "--width", "48", "--height", "48", "--frames", "3"]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out

    def test_evaluate_chrome(self, capsys):
        assert main(["evaluate", "--workload", "chrome"]) == 0
        out = capsys.readouterr().out
        assert "texture_tiling" in out
        assert "mean energy reduction" in out

    def test_evaluate_vp9(self, capsys):
        assert main(["evaluate", "--workload", "vp9"]) == 0
        assert "motion_estimation" in capsys.readouterr().out

    def test_figures_filter(self, capsys):
        assert main(["figures", "--figure", "Table 1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 18" not in out

    def test_figures_write(self, tmp_path, capsys):
        path = tmp_path / "EXP.md"
        assert main(["figures", "--write", str(path)]) == 0
        assert path.exists()
        assert "## Headline" in path.read_text()

    def test_characterize(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out
        assert "62.7%" in out

    def test_export(self, tmp_path, capsys):
        d = tmp_path / "data"
        assert main(["export", "--dir", str(d)]) == 0
        assert (d / "index.json").exists()
        assert "17 files" in capsys.readouterr().out

    def test_scorecard(self, capsys):
        assert main(["scorecard"]) == 0
        out = capsys.readouterr().out
        assert "anchors within tolerance" in out

    def test_figures_chart(self, capsys):
        assert main(["figures", "--figure", "Figure 1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "#" in out

    def test_figures_no_cache(self, capsys):
        assert main(["figures", "--figure", "Table 1", "--no-cache"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figures_warm_cache_round(self, capsys):
        assert main(["figures", "--figure", "Table 1"]) == 0
        first = capsys.readouterr().out
        assert main(["figures", "--figure", "Table 1"]) == 0
        assert capsys.readouterr().out == first

    def test_figures_parallel(self, capsys):
        assert main(["figures", "--figure", "Table 1", "--jobs", "2", "--no-cache"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_evaluate_parallel(self, capsys):
        assert main(["evaluate", "--workload", "chrome", "--jobs", "2"]) == 0
        assert "texture_tiling" in capsys.readouterr().out
