"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import headline_from_counters, load_manifest


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_areas(self, capsys):
        assert main(["areas"]) == 0
        out = capsys.readouterr().out
        assert "pim_core" in out
        assert "motion_estimation" in out
        assert "TOO BIG" not in out

    def test_codec(self, capsys):
        assert main(["codec", "--width", "48", "--height", "48", "--frames", "3"]) == 0
        out = capsys.readouterr().out
        assert "PSNR" in out

    def test_evaluate_chrome(self, capsys):
        assert main(["evaluate", "--workload", "chrome"]) == 0
        out = capsys.readouterr().out
        assert "texture_tiling" in out
        assert "mean energy reduction" in out

    def test_evaluate_vp9(self, capsys):
        assert main(["evaluate", "--workload", "vp9"]) == 0
        assert "motion_estimation" in capsys.readouterr().out

    def test_figures_filter(self, capsys):
        assert main(["figures", "--figure", "Table 1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 18" not in out

    def test_figures_write(self, tmp_path, capsys):
        path = tmp_path / "EXP.md"
        assert main(["figures", "--write", str(path)]) == 0
        assert path.exists()
        assert "## Headline" in path.read_text()

    def test_characterize(self, capsys):
        assert main(["characterize"]) == 0
        out = capsys.readouterr().out
        assert "AVERAGE" in out
        assert "62.7%" in out

    def test_export(self, tmp_path, capsys):
        d = tmp_path / "data"
        assert main(["export", "--dir", str(d)]) == 0
        assert (d / "index.json").exists()
        assert "17 files" in capsys.readouterr().out

    def test_scorecard(self, capsys):
        assert main(["scorecard"]) == 0
        out = capsys.readouterr().out
        assert "anchors within tolerance" in out

    def test_figures_chart(self, capsys):
        assert main(["figures", "--figure", "Figure 1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "#" in out

    def test_figures_no_cache(self, capsys):
        assert main(["figures", "--figure", "Table 1", "--no-cache"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_figures_warm_cache_round(self, capsys):
        assert main(["figures", "--figure", "Table 1"]) == 0
        first = capsys.readouterr().out
        assert main(["figures", "--figure", "Table 1"]) == 0
        assert capsys.readouterr().out == first

    def test_figures_parallel(self, capsys):
        assert main(["figures", "--figure", "Table 1", "--jobs", "2", "--no-cache"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_evaluate_parallel(self, capsys):
        assert main(["evaluate", "--workload", "chrome", "--jobs", "2"]) == 0
        assert "texture_tiling" in capsys.readouterr().out

    def test_cachesweep_batched_and_serial_agree(self, tmp_path, capsys):
        store = str(tmp_path / "traces")
        args = ["cachesweep", "--workload", "tensorflow.gemm_packed",
                "--trace-dir", store, "--no-cache"]
        assert main(args) == 0
        batched = capsys.readouterr().out
        assert "batched" in batched
        assert "l1=64kB/4w,llc=2MB/8w" in batched
        assert main(args + ["--no-batch"]) == 0
        serial = capsys.readouterr().out
        # Identical rows, different engine tag.
        assert serial.replace("serial/cached", "batched") == batched

    def test_cachesweep_unknown_workload(self, capsys):
        assert main(["cachesweep", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_cachesweep_checkpoint_resume(self, tmp_path, capsys):
        store = str(tmp_path / "traces")
        journal = str(tmp_path / "sweep.jsonl")
        args = ["cachesweep", "--workload", "chrome.compositing_tiled",
                "--trace-dir", store, "--no-cache", "--checkpoint", journal]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed.replace("serial/cached", "batched") == first

    def test_cachesweep_parallel_rows_identical(self, tmp_path, capsys):
        store = str(tmp_path / "traces")
        args = ["cachesweep", "--workload", "tensorflow.gemm_packed",
                "--trace-dir", store, "--no-cache"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_trace_list_prune_clear(self, tmp_path, capsys):
        store = str(tmp_path / "traces")
        assert main(["cachesweep", "--workload", "tensorflow.gemm_packed",
                     "--trace-dir", store, "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["trace", "list", "--dir", store]) == 0
        listing = capsys.readouterr().out
        assert "tensorflow.gemm_packed" in listing
        assert "current" in listing
        # The current version's artifact survives an age prune...
        assert main(["trace", "prune", "--dir", store,
                     "--max-age-days", "0"]) == 0
        capsys.readouterr()
        assert main(["trace", "list", "--dir", store]) == 0
        assert "tensorflow.gemm_packed" in capsys.readouterr().out
        # ...but clear removes everything.
        assert main(["trace", "clear", "--dir", store]) == 0
        capsys.readouterr()
        assert main(["trace", "list", "--dir", store]) == 0
        assert "tensorflow.gemm_packed" not in capsys.readouterr().out


class TestObservabilityFlags:
    def test_evaluate_writes_manifest_and_trace(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        trace_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "evaluate",
                    "--workload",
                    "chrome",
                    "--manifest",
                    str(out_dir),
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "wrote manifest" in out and "wrote trace" in out

        manifest = load_manifest(out_dir)
        assert manifest["schema"] == "repro-run-manifest/v1"
        assert manifest["counters"]["core.runner.targets"] == 4
        assert manifest["counters"]["core.offload.comparisons"] == 4
        assert manifest["counters"]["sim.dram.offchip.bytes"] > 0
        assert manifest["counters"]["energy.pim_acc.pim_memory"] > 0
        span_names = [s["name"] for s in manifest["spans"]]
        assert "core.runner.evaluate" in span_names
        assert "core.runner.target.texture_tiling" in span_names

        with open(trace_path) as f:
            document = json.load(f)
        assert document["traceEvents"]
        assert all(e["ph"] == "X" for e in document["traceEvents"])

    def test_evaluate_manifest_rederives_results(self, tmp_path):
        out_dir = tmp_path / "out"
        assert main(["evaluate", "--manifest", str(out_dir)]) == 0
        manifest = load_manifest(out_dir)
        derived = headline_from_counters(manifest["counters"])
        results = manifest["results"]
        assert (
            abs(
                derived["mean_pim_acc_energy_reduction"]
                - results["mean_pim_acc_energy_reduction"]
            )
            < 1e-12
        )
        assert (
            abs(derived["mean_pim_acc_speedup"] - results["mean_pim_acc_speedup"])
            < 1e-12
        )
        assert sorted(derived["targets"]) == sorted(results["targets"])

    def test_evaluate_parallel_manifest_merges_workers(self, tmp_path):
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "evaluate",
                    "--workload",
                    "chrome",
                    "--jobs",
                    "2",
                    "--manifest",
                    str(out_dir),
                ]
            )
            == 0
        )
        manifest = load_manifest(out_dir)
        assert manifest["counters"]["core.runner.targets"] == 4
        # Per-target spans recorded in worker processes came home.
        names = [s["name"] for s in manifest["spans"]]
        assert "core.runner.target.color_blitting" in names

    def test_figures_manifest(self, tmp_path):
        out_dir = tmp_path / "out"
        assert (
            main(
                [
                    "figures",
                    "--figure",
                    "Table 1",
                    "--manifest",
                    str(out_dir),
                    "--trace-out",
                    str(tmp_path / "trace.json"),
                ]
            )
            == 0
        )
        manifest = load_manifest(out_dir)
        assert manifest["command"].startswith("figures")
        assert manifest["results"]["figures"]
        assert "analysis.all_results" in [s["name"] for s in manifest["spans"]]
        assert (tmp_path / "trace.json").exists()

    def test_no_flags_no_files(self, tmp_path, capsys):
        assert main(["evaluate", "--workload", "vp9"]) == 0
        out = capsys.readouterr().out
        assert "wrote manifest" not in out and "wrote trace" not in out
