"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.config import default_system
from repro.core.offload import OffloadEngine
from repro.sim.cpu import CpuModel
from repro.sim.pim import PimAcceleratorModel, PimCoreModel


@pytest.fixture(autouse=True)
def _isolated_memo_cache(tmp_path, monkeypatch):
    """Keep CLI/report memo-cache writes out of the working tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))


@pytest.fixture(scope="session")
def system():
    return default_system()


@pytest.fixture(scope="session")
def cpu_model(system):
    return CpuModel(system)


@pytest.fixture(scope="session")
def pim_core_model(system):
    return PimCoreModel(system)


@pytest.fixture(scope="session")
def pim_acc_model(system):
    return PimAcceleratorModel(system)


@pytest.fixture(scope="session")
def engine(system):
    return OffloadEngine(system)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
