"""Shared fixtures and hypothesis policy for the test suite."""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.config import default_system
from repro.core.offload import OffloadEngine
from repro.sim.cpu import CpuModel
from repro.sim.pim import PimAcceleratorModel, PimCoreModel

# One central hypothesis policy: no deadlines (model-code speed varies
# wildly across CI runners) and pinned example generation (derandomize),
# so every run — local or CI — executes the identical example set.
# Individual suites may still override max_examples; unspecified fields
# inherit from this profile.  Select another profile (e.g. for a fuzzing
# soak) with REPRO_HYPOTHESIS_PROFILE.
settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "soak",
    deadline=None,
    derandomize=False,
    max_examples=500,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture(autouse=True)
def _isolated_memo_cache(tmp_path, monkeypatch):
    """Keep CLI/report memo-cache writes out of the working tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "memo"))


@pytest.fixture(scope="session")
def system():
    return default_system()


@pytest.fixture(scope="session")
def cpu_model(system):
    return CpuModel(system)


@pytest.fixture(scope="session")
def pim_core_model(system):
    return PimCoreModel(system)


@pytest.fixture(scope="session")
def pim_acc_model(system):
    return PimAcceleratorModel(system)


@pytest.fixture(scope="session")
def engine(system):
    return OffloadEngine(system)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
