"""Unit tests for the thermal model."""

import pytest

from repro.analysis.headline import all_pim_targets
from repro.energy.thermal import ThermalConfig, ThermalModel
from repro.workloads.chrome.pages import PAGES
from repro.workloads.vp9.profiles import encoder_functions


@pytest.fixture(scope="module")
def model():
    return ThermalModel()


class TestThrottling:
    def test_under_tdp_untouched(self, model):
        r = model.sustained_execution(energy_j=2.0, time_s=1.0)  # 2 W < 4 W
        assert not r.throttled
        assert r.effective_time_s == 1.0

    def test_over_tdp_stretches_time(self, model):
        r = model.sustained_execution(energy_j=8.0, time_s=1.0)  # 8 W
        assert r.throttled
        assert r.throttle_factor == pytest.approx(0.5)
        assert r.effective_time_s == pytest.approx(2.0)

    def test_zero_time(self, model):
        assert model.sustained_execution(0.0, 0.0).effective_time_s == 0.0

    def test_tight_envelope_throttles_more(self):
        hot = ThermalModel(ThermalConfig(soc_tdp_w=1.0))
        cool = ThermalModel(ThermalConfig(soc_tdp_w=8.0))
        hot_r = hot.sustained_execution(4.0, 1.0)
        cool_r = cool.sustained_execution(4.0, 1.0)
        assert hot_r.effective_time_s > cool_r.effective_time_s


class TestWorkloadThrottling:
    def test_pim_relieves_soc_power(self, model):
        """Moving the data-movement kernels into memory cuts SoC-side
        power, so PIM throttles no harder than CPU-only."""
        functions = encoder_functions(1280, 720, 30)
        cpu, pim = model.workload_throttling(functions)
        assert pim.raw_power_w < cpu.raw_power_w

    def test_pim_never_slower_after_throttling(self, model):
        for page in PAGES.values():
            cpu, pim = model.workload_throttling(page.scrolling_functions())
            assert pim.effective_time_s <= cpu.effective_time_s * 1.01, page.name


class TestLogicLayerBudget:
    def test_all_paper_targets_fit(self, model):
        """The thermal counterpart of Section 3.3's area check: every
        accepted PIM accelerator must fit the logic layer's power
        envelope while running flat out."""
        for check in model.check_all_targets(all_pim_targets()):
            assert check.fits, "%s draws %.1f W" % (check.target, check.pim_power_w)

    def test_power_fraction_reported(self, model):
        from repro.workloads.chrome.targets import texture_tiling_target

        check = model.check_pim_target(texture_tiling_target())
        assert 0.0 < check.fraction_of_budget < 1.0

    def test_pim_core_also_fits(self, model):
        from repro.workloads.chrome.targets import texture_tiling_target

        check = model.check_pim_target(texture_tiling_target(), use_accelerator=False)
        assert check.fits
