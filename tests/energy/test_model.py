"""Unit tests for the event-based energy model."""

import pytest

from repro.energy.model import EnergyModel
from repro.sim.profile import KernelProfile


def streaming(bytes_total=1024 * 1024):
    return KernelProfile.streaming(
        "k", bytes_read=bytes_total / 2, bytes_written=bytes_total / 2,
        ops_per_byte=0.5,
    )


class TestCpuComponents:
    def test_offchip_traffic_charged_per_bit(self):
        model = EnergyModel()
        p = streaming()
        e = model.cpu_components(p, stall_cycles=0.0)
        bits = p.dram_bytes * 8
        assert e.dram == pytest.approx(bits * model.params.dram_energy_per_bit)
        assert e.interconnect == pytest.approx(
            bits * model.params.interconnect_energy_per_bit
        )
        assert e.memctrl == pytest.approx(bits * model.params.memctrl_energy_per_bit)

    def test_cpu_energy_includes_stall(self):
        model = EnergyModel()
        p = streaming()
        none = model.cpu_components(p, stall_cycles=0.0)
        some = model.cpu_components(p, stall_cycles=1e6)
        assert some.cpu > none.cpu
        assert some.cpu_stall == pytest.approx(
            1e6 * model.params.cpu_stall_energy_per_cycle
        )

    def test_negative_stall_clamped(self):
        model = EnergyModel()
        e = model.cpu_components(streaming(), stall_cycles=-5.0)
        assert e.cpu_stall == 0.0

    def test_l1_charged_per_access(self):
        model = EnergyModel()
        p = streaming()
        e = model.cpu_components(p, 0.0)
        assert e.l1 == pytest.approx(p.mem_instructions * model.params.l1_energy_per_access)

    def test_no_pim_energy_on_cpu(self):
        model = EnergyModel()
        e = model.cpu_components(streaming(), 0.0)
        assert e.pim_compute == 0.0 and e.pim_memory == 0.0


class TestPimComponents:
    def test_pim_core_has_no_offchip_energy(self):
        model = EnergyModel()
        e = model.pim_core_components(streaming(), 1e5, 1e4, 0.0)
        assert e.dram == 0.0 and e.interconnect == 0.0 and e.memctrl == 0.0
        assert e.pim_memory > 0.0

    def test_simd_instructions_cost_double(self):
        model = EnergyModel()
        p = streaming()
        scalar_only = model.pim_core_components(p, 1e6, 0.0, 0.0)
        simd_only = model.pim_core_components(p, 0.0, 1e6, 0.0)
        assert simd_only.pim_compute == pytest.approx(2 * scalar_only.pim_compute)

    def test_pim_memory_cheaper_than_cpu_offchip(self):
        model = EnergyModel()
        p = streaming()
        cpu = model.cpu_components(p, 0.0)
        pim = model.pim_core_components(p, 0.0, 0.0, 0.0)
        cpu_move = cpu.interconnect + cpu.memctrl + cpu.dram
        assert pim.pim_memory < cpu_move

    def test_accelerator_compute_is_20x_cheaper_than_cpu(self):
        model = EnergyModel()
        p = streaming()
        acc = model.pim_accelerator_components(p)
        assert acc.pim_compute == pytest.approx(
            p.alu_ops * model.params.cpu_energy_per_instruction / 20.0
        )

    def test_accelerator_vs_core_energy(self):
        """For compute-light kernels the two PIM options are close; the
        accelerator never loses."""
        model = EnergyModel()
        p = streaming()
        core = model.pim_core_components(p, p.instructions, 0.0, 0.0)
        acc = model.pim_accelerator_components(p)
        assert acc.total <= core.total
