"""Unit tests for the battery-life model and the whole-workload offload
evaluator."""

import pytest

from repro.core.workload import offloaded_totals
from repro.energy.battery import BatteryModel, DeviceConfig, UsageMix
from repro.workloads.chrome.pages import PAGES


class TestOffloadedTotals:
    def test_pim_saves_energy_and_time(self):
        functions = PAGES["Google Docs"].scrolling_functions()
        totals = offloaded_totals(functions)
        assert totals.pim_energy_j < totals.cpu_energy_j
        assert totals.pim_time_s < totals.cpu_time_s
        assert 0.0 < totals.energy_reduction < 1.0
        assert totals.speedup > 1.0

    def test_reduction_bounded_by_target_share(self):
        """Offloading only the PIM targets cannot save more than their
        share of workload energy (Amdahl)."""
        functions = PAGES["Google Docs"].scrolling_functions()
        totals = offloaded_totals(functions)
        from repro.core.workload import characterize

        ch = characterize("docs", functions)
        target_share = (
            ch.energy_share("texture_tiling") + ch.energy_share("color_blitting")
        )
        assert totals.energy_reduction <= target_share + 0.01

    def test_core_saves_less_than_acc(self):
        functions = PAGES["Google Docs"].scrolling_functions()
        acc = offloaded_totals(functions, use_accelerators=True)
        core = offloaded_totals(functions, use_accelerators=False)
        assert acc.pim_energy_j <= core.pim_energy_j


class TestUsageMix:
    def test_default_sums_to_one(self):
        UsageMix()  # must not raise

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            UsageMix(browsing=0.9, video_playback=0.9, video_capture=0.0,
                     inference=0.0)


class TestBatteryModel:
    @pytest.fixture(scope="class")
    def estimate(self):
        return BatteryModel().estimate()

    def test_pim_extends_battery_life(self, estimate):
        assert estimate.pim_hours > estimate.cpu_only_hours

    def test_improvement_band(self, estimate):
        """PIM halves SoC+memory energy of the offloadable share, but the
        display/fixed rail and non-offloaded compute dilute the win:
        expect a 5-40% battery-life extension, not 2x."""
        assert 0.05 <= estimate.improvement <= 0.45

    def test_hours_plausible_for_chromebook(self, estimate):
        assert 4.0 <= estimate.cpu_only_hours <= 20.0

    def test_bigger_battery_scales_linearly(self):
        small = BatteryModel(DeviceConfig(battery_wh=20.0)).estimate()
        large = BatteryModel(DeviceConfig(battery_wh=40.0)).estimate()
        assert large.cpu_only_hours == pytest.approx(2 * small.cpu_only_hours)

    def test_video_heavy_mix_gains_more_than_inference_heavy(self):
        """Video kernels offload a larger energy share than inference
        (where the GEMM stays on the CPU), so a video-heavy user gains
        more battery life."""
        model = BatteryModel()
        video = model.estimate(UsageMix(browsing=0.1, video_playback=0.8,
                                        video_capture=0.05, inference=0.05))
        ml = model.estimate(UsageMix(browsing=0.1, video_playback=0.05,
                                     video_capture=0.05, inference=0.8))
        assert video.improvement > ml.improvement
