"""Unit tests for the energy parameter set."""

import pytest

from repro.energy.components import EnergyParameters, default_energy_parameters, PJ


class TestEnergyParameters:
    def test_defaults_are_positive(self):
        p = default_energy_parameters()
        assert p.cpu_energy_per_instruction > 0
        assert p.pim_core_energy_per_instruction > 0
        assert p.l1_energy_per_access > 0
        assert p.llc_energy_per_line > 0
        assert p.dram_energy_per_bit > 0

    def test_offchip_per_byte_sums_three_components(self):
        p = default_energy_parameters()
        expected = 8 * (
            p.interconnect_energy_per_bit
            + p.memctrl_energy_per_bit
            + p.dram_energy_per_bit
        )
        assert p.offchip_energy_per_byte == pytest.approx(expected)

    def test_internal_per_byte_sums_two_components(self):
        p = default_energy_parameters()
        expected = 8 * (
            p.stacked_internal_energy_per_bit + p.vault_ctrl_energy_per_bit
        )
        assert p.internal_energy_per_byte == pytest.approx(expected)

    def test_internal_path_cheaper_than_offchip(self):
        """The premise of PIM: in-memory access avoids interface energy."""
        p = default_energy_parameters()
        assert p.internal_energy_per_byte < p.offchip_energy_per_byte

    def test_internal_path_not_free(self):
        """The DRAM array energy remains; internal is at most ~2x cheaper."""
        p = default_energy_parameters()
        assert p.internal_energy_per_byte > 0.25 * p.offchip_energy_per_byte

    def test_accelerator_is_20x_cpu(self):
        p = default_energy_parameters()
        assert p.accelerator_efficiency_vs_cpu == pytest.approx(20.0)
        assert p.accelerator_energy_per_op == pytest.approx(
            p.cpu_energy_per_instruction / 20.0
        )

    def test_pim_core_cheaper_than_cpu_per_instruction(self):
        p = default_energy_parameters()
        assert p.pim_core_energy_per_instruction < p.cpu_energy_per_instruction

    def test_moving_a_byte_costs_more_than_an_op(self):
        """Keckler et al.'s observation, the paper's core premise."""
        p = default_energy_parameters()
        assert p.offchip_energy_per_byte > p.cpu_energy_per_instruction

    def test_custom_parameters_flow_through(self):
        p = EnergyParameters(dram_energy_per_bit=100 * PJ)
        assert p.offchip_energy_per_byte > default_energy_parameters().offchip_energy_per_byte

    def test_parameters_frozen(self):
        p = default_energy_parameters()
        with pytest.raises(AttributeError):
            p.dram_energy_per_bit = 0.0
