"""Unit tests for the PIM area model (paper Section 3.3)."""

import pytest

from repro.config import PimCoreConfig, StackedMemoryConfig
from repro.energy.area import AreaModel, PAPER_ACCELERATOR_AREAS


class TestBudget:
    def test_per_vault_budget_range(self):
        """50-60 mm^2 over 16 vaults -> ~3.5-4.4 mm^2 per vault."""
        model = AreaModel()
        assert 3.0 <= model.budget_per_vault_mm2 <= 4.5

    def test_budget_scales_with_logic_area(self):
        small = AreaModel(StackedMemoryConfig(logic_layer_area_mm2=50.0))
        large = AreaModel(StackedMemoryConfig(logic_layer_area_mm2=60.0))
        assert small.budget_per_vault_mm2 < large.budget_per_vault_mm2


class TestPimCore:
    def test_pim_core_fits(self):
        check = AreaModel().check_pim_core()
        assert check.fits

    def test_pim_core_under_ten_percent(self):
        """Paper: the PIM core needs no more than 9.4% of a vault's area."""
        check = AreaModel().check_pim_core()
        assert check.fraction_of_budget <= 0.10

    def test_oversized_core_rejected(self):
        fat = PimCoreConfig(area_mm2=10.0)
        check = AreaModel().check_pim_core(fat)
        assert not check.fits


class TestAccelerators:
    def test_all_paper_accelerators_fit(self):
        for check in AreaModel().check_all_accelerators():
            assert check.fits, check.target

    @pytest.mark.parametrize(
        "target,paper_fraction",
        [
            ("texture_tiling", 0.071),  # <= 7.1% (Section 4.2.2)
            ("sub_pixel_interpolation", 0.060),  # <= 6.0% (Section 6.2.2)
            ("deblocking_filter", 0.034),  # <= 3.4% (Section 6.2.2)
            ("motion_estimation", 0.354),  # <= 35.4% (Section 7.2.2)
            ("motion_compensation_unit", 0.094),  # <= 9.4% (Section 6.3.2)
        ],
    )
    def test_paper_area_fractions(self, target, paper_fraction):
        check = AreaModel().check_accelerator(target)
        assert check.fraction_of_budget == pytest.approx(paper_fraction, abs=0.02)

    def test_motion_estimation_is_largest(self):
        areas = {k: v.area_mm2 for k, v in PAPER_ACCELERATOR_AREAS.items()}
        assert max(areas, key=areas.get) == "motion_estimation"

    def test_unknown_accelerator_raises(self):
        with pytest.raises(KeyError):
            AreaModel().check_accelerator("warp_drive")

    def test_every_area_entry_has_source(self):
        for name, acc in PAPER_ACCELERATOR_AREAS.items():
            assert acc.area_mm2 > 0, name
            assert "Section" in acc.source, name
