"""Unit tests for EnergyBreakdown arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.energy.breakdown import Component, EnergyBreakdown

finite = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


def make(**kwargs):
    return EnergyBreakdown(**kwargs)


class TestTotals:
    def test_zero_total(self):
        assert EnergyBreakdown.zero().total == 0.0

    def test_total_sums_all_components(self):
        b = make(cpu=1, l1=2, llc=3, interconnect=4, memctrl=5, dram=6,
                 pim_compute=7, pim_memory=8)
        assert b.total == pytest.approx(36.0)

    def test_cpu_stall_not_double_counted(self):
        b = make(cpu=10, cpu_stall=4)
        assert b.total == pytest.approx(10.0)

    def test_movement_definition(self):
        """Movement = caches + interconnect + memctrl + dram + pim memory
        + CPU stall cycles (paper Section 4.2.1)."""
        b = make(cpu=10, cpu_stall=4, l1=1, llc=2, interconnect=3, memctrl=4,
                 dram=5, pim_memory=6)
        assert b.data_movement == pytest.approx(4 + 1 + 2 + 3 + 4 + 5 + 6)

    def test_compute_definition(self):
        b = make(cpu=10, cpu_stall=4, pim_compute=3)
        assert b.compute == pytest.approx(6 + 3)

    def test_movement_plus_compute_equals_total(self):
        b = make(cpu=10, cpu_stall=4, l1=1, llc=2, interconnect=3, memctrl=4,
                 dram=5, pim_compute=6, pim_memory=7)
        assert b.data_movement + b.compute == pytest.approx(b.total)

    def test_movement_fraction_of_zero_total(self):
        assert EnergyBreakdown.zero().data_movement_fraction == 0.0


class TestArithmetic:
    def test_add(self):
        a = make(cpu=1, dram=2)
        b = make(cpu=3, dram=4, llc=5)
        c = a + b
        assert c.cpu == 4 and c.dram == 6 and c.llc == 5

    def test_sum_builtin(self):
        parts = [make(cpu=1), make(cpu=2), make(cpu=3)]
        assert sum(parts, EnergyBreakdown.zero()).cpu == pytest.approx(6)
        assert sum(parts).cpu == pytest.approx(6)  # __radd__ with 0

    def test_scaled(self):
        b = make(cpu=2, dram=4, cpu_stall=1)
        s = b.scaled(0.5)
        assert s.cpu == 1 and s.dram == 2 and s.cpu_stall == 0.5

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            make(cpu=1) + 3.0

    def test_component_accessor(self):
        b = make(dram=7)
        assert b.component(Component.DRAM) == 7
        assert b.component(Component.CPU) == 0

    def test_as_dict_keys(self):
        d = make(cpu=1).as_dict()
        assert set(d) == {
            "cpu", "l1", "llc", "interconnect", "memctrl", "dram",
            "pim_compute", "pim_memory",
        }


class TestProperties:
    @given(cpu=finite, l1=finite, llc=finite, dram=finite, stall=finite)
    def test_total_nonnegative_and_consistent(self, cpu, l1, llc, dram, stall):
        b = make(cpu=cpu + stall, cpu_stall=stall, l1=l1, llc=llc, dram=dram)
        assert b.total >= 0
        assert b.data_movement + b.compute == pytest.approx(b.total, rel=1e-9, abs=1e-12)
        assert 0.0 <= b.data_movement_fraction <= 1.0 + 1e-9

    @given(cpu=finite, dram=finite, factor=st.floats(min_value=0, max_value=100,
                                                     allow_nan=False))
    def test_scaling_is_linear(self, cpu, dram, factor):
        b = make(cpu=cpu, dram=dram)
        assert b.scaled(factor).total == pytest.approx(b.total * factor, rel=1e-9, abs=1e-12)
