"""Unit tests for the quantized GEMM kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.tensorflow.gemm import (
    profile_gemm,
    quantized_gemm,
    quantized_gemm_reference,
)
from repro.workloads.tensorflow.quantization import QuantizedTensor, quantize_tensor


def qtensor(rows, cols, seed=0, zero_point=7):
    rng = np.random.default_rng(seed)
    return QuantizedTensor(
        values=rng.integers(0, 256, size=(rows, cols), dtype=np.uint8),
        scale=0.1,
        zero_point=zero_point,
    )


class TestCorrectness:
    def test_matches_reference(self):
        lhs, rhs = qtensor(9, 7, 1), qtensor(7, 5, 2, zero_point=100)
        assert np.array_equal(quantized_gemm(lhs, rhs), quantized_gemm_reference(lhs, rhs))

    def test_matches_float_gemm_within_quantization_error(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(-2, 2, size=(12, 20)).astype(np.float32)
        b = rng.uniform(-2, 2, size=(20, 8)).astype(np.float32)
        qa, qb = quantize_tensor(a), quantize_tensor(b)
        acc = quantized_gemm(qa, qb).astype(np.float64) * (qa.scale * qb.scale)
        exact = a.astype(np.float64) @ b.astype(np.float64)
        # Error per output element ~ K * (step_a*|b| + step_b*|a|).
        assert np.abs(acc - exact).max() < 20 * (qa.scale * 2 + qb.scale * 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            quantized_gemm(qtensor(4, 5), qtensor(6, 3))

    def test_non_2d_rejected(self):
        bad = QuantizedTensor(values=np.zeros(4, dtype=np.uint8), scale=1.0,
                              zero_point=0)
        with pytest.raises(ValueError):
            quantized_gemm(bad, qtensor(4, 4))

    @settings(max_examples=20)
    @given(
        m=st.integers(min_value=1, max_value=12),
        k=st.integers(min_value=1, max_value=12),
        n=st.integers(min_value=1, max_value=12),
        panel=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_panelwise_equals_reference_property(self, m, k, n, panel, seed):
        lhs, rhs = qtensor(m, k, seed), qtensor(k, n, seed + 1, zero_point=255)
        assert np.array_equal(
            quantized_gemm(lhs, rhs, panel_rows=panel),
            quantized_gemm_reference(lhs, rhs),
        )


class TestProfile:
    def test_ops_count(self):
        p = profile_gemm(64, 128, 32)
        assert p.alu_ops == pytest.approx(2 * 64 * 128 * 32 / 16)

    def test_blocking_amplifies_lhs_traffic(self):
        """When the RHS strip no longer fits in the LLC, the LHS is
        re-read once per strip."""
        small = profile_gemm(1024, 512, 512)
        huge = profile_gemm(1024, 512, 100_000)
        lhs_bytes_small = small.dram_bytes
        assert huge.dram_bytes > (huge.alu_ops / small.alu_ops) * lhs_bytes_small * 0.5

    def test_compute_dominates_energy(self, cpu_model):
        """Paper: 67.5% of Conv2D/MatMul energy is computation, which is
        why the GEMM kernel is *not* a PIM target (Section 5.2)."""
        p = profile_gemm(3136, 576, 128)  # a VGG-like conv GEMM
        e = cpu_model.run(p)
        assert e.energy.data_movement_fraction < 0.5

    def test_fc_layer_is_weight_bound(self, cpu_model):
        """M=1 GEMMs (fully-connected) are movement-heavy instead."""
        p = profile_gemm(1, 25088, 4096)
        e = cpu_model.run(p)
        assert e.energy.data_movement_fraction > 0.5
