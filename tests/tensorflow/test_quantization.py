"""Unit + property tests for quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.workloads.tensorflow.quantization import (
    dequantize_tensor,
    profile_quantization,
    profile_requantization,
    quantize_tensor,
    requantize,
)

float_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=16),
    elements=st.floats(min_value=-1e4, max_value=1e4, width=32),
)


class TestQuantize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.array([], dtype=np.float32))

    def test_constant_tensor(self):
        q = quantize_tensor(np.zeros((4, 4), dtype=np.float32))
        assert (q.values == 0).all()

    def test_range_mapped_to_uint8(self):
        x = np.linspace(-10, 10, 100, dtype=np.float32)
        q = quantize_tensor(x)
        # Within one code of the rails (float32 rounding at the extremes).
        assert q.values.min() <= 1
        assert q.values.max() >= 254

    def test_zero_point_represents_zero_exactly(self):
        x = np.array([-3.0, 0.0, 5.0], dtype=np.float32)
        q = quantize_tensor(x)
        restored = dequantize_tensor(q)
        assert restored[1] == pytest.approx(0.0, abs=1e-6)

    def test_roundtrip_error_bounded_by_step(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-50, 50, size=(32, 32)).astype(np.float32)
        q = quantize_tensor(x)
        err = np.abs(dequantize_tensor(q) - x).max()
        assert err <= q.scale * 0.51

    @settings(max_examples=50)
    @given(x=float_arrays)
    def test_roundtrip_property(self, x):
        q = quantize_tensor(x)
        restored = dequantize_tensor(q)
        # The representable range always includes zero (affine scheme).
        span = max(max(float(x.max()), 0.0) - min(float(x.min()), 0.0), 1e-9)
        assert np.abs(restored - x).max() <= span / 255.0 + 1e-4

    @settings(max_examples=25)
    @given(x=float_arrays)
    def test_values_fit_uint8(self, x):
        q = quantize_tensor(x)
        assert q.values.dtype == np.uint8
        assert 0 <= q.zero_point <= 255


class TestRequantize:
    def test_requantize_matches_direct_quantization(self):
        rng = np.random.default_rng(1)
        acc = rng.integers(-100_000, 100_000, size=(8, 8))
        scale = 1e-3
        q = requantize(acc, scale)
        direct = quantize_tensor((acc * scale).astype(np.float32))
        assert np.abs(q.values.astype(int) - direct.values.astype(int)).max() <= 1


class TestProfiles:
    def test_two_scans_of_input(self):
        p = profile_quantization(1_000_000)
        # 2 passes x 4 B reads + 1 B write per element.
        assert p.dram_bytes == pytest.approx(9_000_000)

    def test_requantization_same_traffic_shape(self):
        q = profile_quantization(1000)
        r = profile_requantization(1000)
        assert r.dram_bytes == q.dram_bytes

    def test_memory_intensive(self):
        assert profile_quantization(4_000_000).mpki > 10

    def test_movement_dominates(self, cpu_model):
        e = cpu_model.run(profile_quantization(4_000_000))
        assert e.energy.data_movement_fraction > 0.6
