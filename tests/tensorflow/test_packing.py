"""Unit + property tests for gemmlowp-style packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.tensorflow.packing import (
    pack_matrix,
    profile_packing,
    profile_unpacking,
    unpack_matrix,
)


def matrix(rows, cols, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)


class TestPacking:
    def test_roundtrip(self):
        m = matrix(16, 12)
        assert np.array_equal(unpack_matrix(pack_matrix(m)), m)

    def test_roundtrip_partial_panel(self):
        m = matrix(10, 7)  # 10 rows with panel_rows=4 -> padded to 12
        assert np.array_equal(unpack_matrix(pack_matrix(m)), m)

    def test_panel_count(self):
        p = pack_matrix(matrix(10, 7), panel_rows=4)
        assert p.num_panels == 3

    def test_panel_contents(self):
        m = matrix(8, 5)
        p = pack_matrix(m, panel_rows=4)
        assert np.array_equal(p.panel(0), m[0:4])
        assert np.array_equal(p.panel(1), m[4:8])

    def test_padding_is_zero(self):
        m = matrix(5, 3)
        p = pack_matrix(m, panel_rows=4)
        last = p.panel(1)
        assert np.array_equal(last[0], m[4])
        assert (last[1:] == 0).all()

    def test_panel_major_layout(self):
        """Within a panel, data is stored column-by-column so the GEMM
        kernel streams panel_rows operands with unit stride."""
        m = matrix(4, 3)
        p = pack_matrix(m, panel_rows=4)
        expected = m.T.reshape(-1)  # columns concatenated
        assert np.array_equal(p.data[: expected.size], expected)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_matrix(np.zeros(5, dtype=np.uint8))

    def test_rejects_bad_panel_rows(self):
        with pytest.raises(ValueError):
            pack_matrix(matrix(4, 4), panel_rows=0)

    @settings(max_examples=30)
    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=40),
        panel=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_roundtrip_property(self, rows, cols, panel, seed):
        m = matrix(rows, cols, seed)
        assert np.array_equal(unpack_matrix(pack_matrix(m, panel_rows=panel)), m)


class TestProfiles:
    def test_pack_traffic_reads_and_writes_once(self):
        p = profile_packing(1_000_000, element_bytes=1)
        assert p.dram_bytes == 2_000_000

    def test_unpack_uses_int32(self):
        p = profile_unpacking(1_000_000)
        assert p.dram_bytes == 8_000_000

    def test_packing_is_movement_dominated(self, cpu_model):
        """Paper: 82.1% of packing energy is data movement."""
        e = cpu_model.run(profile_packing(16_000_000))
        assert e.energy.data_movement_fraction == pytest.approx(0.821, abs=0.12)

    def test_memory_intensive(self):
        assert profile_packing(4_000_000).mpki > 10
