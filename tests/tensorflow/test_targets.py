"""Unit tests for TensorFlow PIM targets and the Figure 19 pipeline."""

import pytest

from repro.core.runner import ExperimentRunner
from repro.workloads.tensorflow.models import vgg19
from repro.workloads.tensorflow.targets import (
    GemmPipelineModel,
    packing_target,
    quantization_target,
    tensorflow_pim_targets,
    top_gemm_layers,
)


class TestTargetConstruction:
    def test_top_layers_sorted_by_macs(self):
        layers = top_gemm_layers(vgg19(), count=4)
        macs = [l.macs for l in layers]
        assert macs == sorted(macs, reverse=True)

    def test_packing_target_aggregates_four_layers(self):
        t = packing_target(vgg19())
        assert t.invocations == 4
        assert t.accelerator_key == "packing"

    def test_quantization_target_two_passes_per_layer(self):
        t = quantization_target(vgg19())
        assert t.invocations == 8

    def test_two_aggregate_targets(self):
        names = [t.name for t in tensorflow_pim_targets()]
        assert names == ["packing", "quantization"]


class TestFigure19Calibration:
    @pytest.fixture(scope="class")
    def energy(self):
        return ExperimentRunner().evaluate(tensorflow_pim_targets())

    def test_energy_reductions(self, energy):
        assert energy.mean_pim_core_energy_reduction == pytest.approx(0.509, abs=0.09)
        assert energy.mean_pim_acc_energy_reduction == pytest.approx(0.549, abs=0.09)

    def test_no_slowdown(self, energy):
        for c in energy.comparisons:
            assert c.pim_core_speedup >= 1.0

    @pytest.fixture(scope="class")
    def sweep(self):
        return GemmPipelineModel().sweep([1, 2, 4, 8, 16])

    def test_speedup_grows_with_gemm_count(self, sweep):
        core = [p.pim_core_speedup for p in sweep]
        acc = [p.pim_acc_speedup for p in sweep]
        assert core == sorted(core)
        assert acc == sorted(acc)

    def test_acc_at_least_matches_core(self, sweep):
        for p in sweep:
            assert p.pim_acc_speedup >= p.pim_core_speedup

    def test_single_gemm_speedup_modest(self, sweep):
        """Paper: +13.1% / +17.2% for one GEMM."""
        assert 1.0 <= sweep[0].pim_core_speedup <= 1.45

    def test_sixteen_gemm_speedup_band(self, sweep):
        """Paper: +57.2% / +98.1% at 16 GEMMs."""
        assert 1.35 <= sweep[-1].pim_core_speedup <= 1.9
        assert 1.4 <= sweep[-1].pim_acc_speedup <= 2.2

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            GemmPipelineModel().sweep([0])
