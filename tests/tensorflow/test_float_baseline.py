"""Unit tests for the float baseline / quantization trade-off."""

import pytest

from repro.workloads.tensorflow.float_baseline import (
    float_functions,
    profile_float_gemm,
    quantization_tradeoff,
)
from repro.workloads.tensorflow.gemm import profile_gemm
from repro.workloads.tensorflow.models import resnet_v2_152, vgg19


class TestFloatGemm:
    def test_four_times_the_traffic_of_uint8(self):
        fp = profile_float_gemm(256, 512, 128)
        q = profile_gemm(256, 512, 128)
        # fp32 LHS/RHS are 4x uint8; the int32 result is the same size.
        assert fp.dram_bytes > 2.5 * q.dram_bytes

    def test_more_instructions_than_uint8(self):
        fp = profile_float_gemm(256, 512, 128)
        q = profile_gemm(256, 512, 128)
        assert fp.instructions > q.instructions

    def test_float_functions_two_buckets(self):
        names = [f.name for f in float_functions(vgg19())]
        assert names == ["float_gemm", "other"]


class TestTradeoff:
    @pytest.fixture(scope="class")
    def tradeoff(self):
        return quantization_tradeoff(resnet_v2_152())

    def test_quantization_saves_over_float(self, tradeoff):
        """Quantization must beat float32 even with its CPU overheads
        (or nobody would use it)."""
        assert tradeoff.quantization_saving > 0.1

    def test_pim_recovers_overhead(self, tradeoff):
        """The paper's Section 5.2 narrative: packing/quantization 'lose
        part of the energy savings they aim to achieve', and PIM recovers
        a substantial slice of the quantized inference's energy."""
        assert tradeoff.pim_saving > tradeoff.quantization_saving
        assert 0.15 <= tradeoff.overhead_recovered <= 0.60

    def test_pim_also_faster(self, tradeoff):
        assert tradeoff.quantized_pim_time_s < tradeoff.quantized_time_s

    def test_ordering_holds_for_vgg_too(self):
        t = quantization_tradeoff(vgg19())
        assert t.float_energy_j > t.quantized_energy_j > t.quantized_pim_energy_j
