"""Unit tests for the four paper network definitions."""

import pytest

from repro.core.workload import characterize
from repro.workloads.tensorflow.models import (
    all_models,
    inception_resnet_v2,
    residual_gru,
    resnet_v2_152,
    vgg19,
)
from repro.workloads.tensorflow.network import ConvLayer, network_functions


class TestVgg19:
    def test_nineteen_gemm_layers(self):
        """Paper Section 5.3: "VGG requires only 19 Conv2D operations"."""
        assert len(vgg19().layers) == 19

    def test_sixteen_convs_three_fc(self):
        net = vgg19()
        assert net.num_conv2d == 16
        assert len(net.layers) - net.num_conv2d == 3

    def test_total_macs_near_published(self):
        """VGG-19 is ~19.6 GMACs for a 224x224 input."""
        assert vgg19().total_macs == pytest.approx(19.6e9, rel=0.15)

    def test_channel_chaining(self):
        convs = [l for l in vgg19().layers if isinstance(l, ConvLayer)]
        for prev, cur in zip(convs, convs[1:]):
            if prev.out_h == cur.in_h:
                assert prev.out_c == cur.in_c


class TestResnet152:
    def test_conv_count_matches_paper(self):
        """Paper Section 5.3: "ResNet requires 156 Conv2D operations"."""
        assert resnet_v2_152().num_conv2d in range(152, 160)

    def test_stage_structure(self):
        net = resnet_v2_152()
        # 1 stem + 3*(3+8+36+3) bottleneck convs + 4 projections.
        assert net.num_conv2d == 1 + 3 * 50 + 4

    def test_quantization_heavier_than_vgg(self):
        """More Conv2D ops -> more quantization passes (Section 5.3)."""
        resnet = characterize("r", network_functions(resnet_v2_152()))
        vgg = characterize("v", network_functions(vgg19()))
        assert resnet.energy_share("quantization") > vgg.energy_share("quantization")


class TestInceptionResnet:
    def test_has_many_convs(self):
        assert inception_resnet_v2().num_conv2d > 150

    def test_input_resolution(self):
        first = inception_resnet_v2().layers[0]
        assert (first.in_h, first.in_w) == (299, 299)


class TestResidualGru:
    def test_iterations_scale_layer_count(self):
        short = residual_gru(iterations=2)
        long = residual_gru(iterations=4)
        assert len(long.layers) > len(short.layers)

    def test_gru_gates_come_in_threes(self):
        net = residual_gru(iterations=1)
        gates = [l for l in net.layers if "_enc0_" in l.name]
        assert len(gates) == 3

    def test_packing_heavy(self):
        """Small-M, wide-K GEMMs make Residual-GRU packing-dominated
        (weights are re-packed on every call)."""
        ch = characterize("gru", network_functions(residual_gru()))
        assert ch.energy_share("packing") > ch.energy_share("quantization")


class TestAllModels:
    def test_four_networks(self):
        names = [n.name for n in all_models()]
        assert names == ["ResNet-V2-152", "VGG-19", "Residual-GRU", "Inception-ResNet"]

    def test_figure6_calibration(self):
        """Packing+quantization average 39.3% of energy (paper Fig. 6)."""
        shares = []
        for net in all_models():
            ch = characterize(net.name, network_functions(net))
            s = ch.energy_shares()
            shares.append(s["packing"] + s["quantization"])
        assert sum(shares) / len(shares) == pytest.approx(0.393, abs=0.09)

    def test_figure7_calibration(self):
        """Packing+quantization average 27.4% of execution time."""
        shares = []
        for net in all_models():
            ch = characterize(net.name, network_functions(net))
            t = ch.time_shares()
            shares.append(t["packing"] + t["quantization"])
        assert sum(shares) / len(shares) == pytest.approx(0.274, abs=0.08)

    def test_movement_fraction_calibration(self):
        """57.3% of inference energy is data movement (Section 5.2)."""
        fractions = [
            characterize(n.name, network_functions(n)).data_movement_fraction
            for n in all_models()
        ]
        assert sum(fractions) / len(fractions) == pytest.approx(0.573, abs=0.08)

    def test_gemm_movement_fraction(self):
        """32.5% of Conv2D/MatMul energy goes to movement (Section 5.3)."""
        ch = characterize("resnet", network_functions(resnet_v2_152()))
        assert ch.movement_fraction_of_function("conv2d_matmul") == pytest.approx(
            0.325, abs=0.1
        )
