"""Unit tests for the per-layer report tooling."""

import pytest

from repro.workloads.tensorflow.layer_report import (
    layer_reports,
    render_table,
    top_layers_by_energy,
)
from repro.workloads.tensorflow.models import vgg19


class TestLayerReports:
    @pytest.fixture(scope="class")
    def reports(self):
        return layer_reports(vgg19())

    def test_one_report_per_layer(self, reports):
        assert len(reports) == 19

    def test_shapes_match_layers(self, reports):
        first = reports[0]
        assert (first.m, first.k, first.n) == (224 * 224, 27, 64)

    def test_energies_positive(self, reports):
        for r in reports:
            assert r.gemm_energy_j > 0
            assert r.overhead_energy_j > 0

    def test_fc_layers_are_overhead_heavy(self, reports):
        """M=1 GEMMs re-pack huge weight matrices: their overhead share
        dwarfs that of the compute-dense mid-network convolutions (the
        first conv, with its K=27 kernel, is itself overhead-heavy)."""
        fc = next(r for r in reports if r.name == "fc6")
        dense_conv = max(
            (r for r in reports if r.name.startswith("conv")),
            key=lambda r: r.macs / max(r.m * r.k + r.k * r.n, 1),
        )
        assert fc.overhead_energy_share > dense_conv.overhead_energy_share

    def test_shares_bounded(self, reports):
        for r in reports:
            assert 0.0 < r.overhead_energy_share < 1.0
            assert 0.0 < r.overhead_time_share < 1.0


class TestTopLayers:
    def test_count_respected(self):
        assert len(top_layers_by_energy(vgg19(), count=4)) == 4

    def test_sorted_by_total_energy(self):
        top = top_layers_by_energy(vgg19(), count=6)
        totals = [r.gemm_energy_j + r.overhead_energy_j for r in top]
        assert totals == sorted(totals, reverse=True)


class TestRenderTable:
    def test_renders_header_and_rows(self):
        table = render_table(layer_reports(vgg19()), limit=5)
        lines = table.splitlines()
        assert len(lines) == 6
        assert "MACs" in lines[0]
        assert "conv224_0" in table
