"""Unit tests for layers, im2col convolution, and the inference engine."""

import numpy as np
import pytest

from repro.workloads.tensorflow.network import (
    ConvLayer,
    FcLayer,
    Network,
    conv2d_quantized,
    im2col,
    infer,
    network_functions,
)


def float_conv_reference(x, w, stride=1, padding=0):
    """Direct float convolution for comparison."""
    k = w.shape[0]
    if padding:
        x = np.pad(x, ((padding, padding), (padding, padding), (0, 0)))
    out_h = (x.shape[0] - k) // stride + 1
    out_w = (x.shape[1] - k) // stride + 1
    out = np.zeros((out_h, out_w, w.shape[3]), dtype=np.float64)
    for oy in range(out_h):
        for ox in range(out_w):
            patch = x[oy * stride : oy * stride + k, ox * stride : ox * stride + k, :]
            out[oy, ox] = np.tensordot(patch, w, axes=([0, 1, 2], [0, 1, 2]))
    return out


class TestLayers:
    def test_conv_output_dims(self):
        layer = ConvLayer("c", 224, 224, 3, 64, kernel=3, stride=1, padding=1)
        assert layer.out_h == 224 and layer.out_w == 224

    def test_conv_stride(self):
        layer = ConvLayer("c", 224, 224, 3, 64, kernel=7, stride=2, padding=3)
        assert layer.out_h == 112

    def test_gemm_dims(self):
        layer = ConvLayer("c", 56, 56, 64, 128, kernel=3, padding=1)
        assert layer.gemm_dims == (56 * 56, 9 * 64, 128)

    def test_macs(self):
        layer = FcLayer("fc", 100, 10)
        assert layer.macs == 1000
        assert layer.gemm_dims == (1, 100, 10)

    def test_network_counts(self):
        net = Network("n", (ConvLayer("c", 8, 8, 3, 4, 3, padding=1),
                            FcLayer("f", 256, 10)))
        assert net.num_conv2d == 1
        assert net.total_macs > 0


class TestIm2col:
    def test_shape(self):
        x = np.arange(5 * 5 * 2, dtype=np.uint8).reshape(5, 5, 2)
        patches = im2col(x, kernel=3)
        assert patches.shape == (9, 18)

    def test_first_patch_content(self):
        x = np.arange(4 * 4 * 1, dtype=np.uint8).reshape(4, 4, 1)
        patches = im2col(x, kernel=2)
        assert list(patches[0]) == [0, 1, 4, 5]

    def test_stride(self):
        x = np.zeros((6, 6, 1), dtype=np.uint8)
        assert im2col(x, kernel=2, stride=2).shape[0] == 9

    def test_padding(self):
        x = np.zeros((4, 4, 1), dtype=np.uint8)
        assert im2col(x, kernel=3, padding=1).shape[0] == 16

    def test_too_large_kernel(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((2, 2, 1), dtype=np.uint8), kernel=5)

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((4, 4), dtype=np.uint8), kernel=2)


class TestConv2dQuantized:
    def test_matches_float_reference(self, rng):
        x = rng.uniform(-1, 1, size=(10, 10, 3)).astype(np.float32)
        w = rng.uniform(-1, 1, size=(3, 3, 3, 4)).astype(np.float32)
        ours = conv2d_quantized(x, w, padding=1)
        exact = float_conv_reference(x, w, padding=1)
        # Two quantizations (input, output): error within a few output steps.
        scale = (exact.max() - exact.min()) / 255.0
        assert np.abs(ours - exact).max() < 6 * scale + 0.1

    def test_output_shape_with_stride(self, rng):
        x = rng.uniform(-1, 1, size=(8, 8, 2)).astype(np.float32)
        w = rng.uniform(-1, 1, size=(2, 2, 2, 5)).astype(np.float32)
        assert conv2d_quantized(x, w, stride=2).shape == (4, 4, 5)

    def test_channel_mismatch(self, rng):
        x = np.zeros((8, 8, 2), dtype=np.float32)
        w = np.zeros((3, 3, 3, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            conv2d_quantized(x, w)

    def test_non_square_kernel_rejected(self):
        with pytest.raises(ValueError):
            conv2d_quantized(
                np.zeros((8, 8, 1), dtype=np.float32),
                np.zeros((3, 2, 1, 4), dtype=np.float32),
            )


class TestInfer:
    def test_small_network_end_to_end(self, rng):
        net = Network(
            "tiny",
            (
                ConvLayer("c1", 8, 8, 3, 4, kernel=3, padding=1),
                ConvLayer("c2", 8, 8, 4, 8, kernel=3, padding=1),
                FcLayer("fc", 8 * 8 * 8, 10),
            ),
        )
        x = rng.uniform(0, 1, size=(8, 8, 3)).astype(np.float32)
        out = infer(net, x)
        assert out.shape == (1, 10)
        assert np.isfinite(out).all()

    def test_fc_dimension_check(self, rng):
        net = Network("bad", (FcLayer("fc", 999, 10),))
        with pytest.raises(ValueError):
            infer(net, rng.uniform(size=(4, 4, 3)).astype(np.float32))


class TestNetworkFunctions:
    def test_four_buckets(self):
        net = Network("n", (ConvLayer("c", 16, 16, 3, 8, 3, padding=1),))
        names = [f.name for f in network_functions(net)]
        assert names == ["packing", "quantization", "conv2d_matmul", "other"]

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            network_functions(Network("empty", ()))

    def test_quantization_invocations_twice_per_conv(self):
        net = Network("n", (ConvLayer("c", 16, 16, 3, 8, 3, padding=1),) * 3)
        fns = {f.name: f for f in network_functions(net)}
        assert fns["quantization"].invocations == 6
