"""Unit tests for the PIM core and PIM accelerator models."""

import pytest

from repro.config import PimCoreConfig, SystemConfig
from repro.sim.pim import PimCoreModel
from repro.sim.profile import KernelProfile

MB = 1024 * 1024


def streaming_profile():
    return KernelProfile.streaming("k", 16 * MB, 16 * MB, ops_per_byte=0.3,
                                   instruction_overhead=0.1, simd_fraction=0.9)


class TestInstructionMix:
    def test_no_simd(self, pim_core_model):
        p = KernelProfile("k", 1000, 100, 500, simd_fraction=0.0)
        scalar, simd = pim_core_model.instruction_mix(p)
        assert scalar == 1000 and simd == 0

    def test_full_simd_collapses_by_width(self, pim_core_model):
        p = KernelProfile("k", 1000, 200, 800, simd_fraction=1.0)
        scalar, simd = pim_core_model.instruction_mix(p)
        # vectorizable = alu + mem = 1000; simd = 1000/4
        assert scalar == pytest.approx(0.0)
        assert simd == pytest.approx(250.0)

    def test_vectorizable_clamped_to_instructions(self, pim_core_model):
        p = KernelProfile("k", 500, 100, 800, simd_fraction=1.0)
        scalar, simd = pim_core_model.instruction_mix(p)
        assert scalar >= 0.0
        assert scalar + simd <= 500

    def test_simd_reduces_effective_instructions(self, pim_core_model):
        base = KernelProfile("k", 1000, 200, 800, simd_fraction=0.0)
        vec = KernelProfile("k", 1000, 200, 800, simd_fraction=1.0)
        s0, v0 = pim_core_model.instruction_mix(base)
        s1, v1 = pim_core_model.instruction_mix(vec)
        assert s1 + v1 < s0 + v0


class TestPimCore:
    def test_machine_label(self, pim_core_model):
        assert pim_core_model.run(streaming_profile()).machine == "PIM-Core"

    def test_no_offchip_energy(self, pim_core_model):
        e = pim_core_model.run(streaming_profile()).energy
        assert e.dram == 0.0 and e.interconnect == 0.0 and e.memctrl == 0.0

    def test_beats_cpu_on_streaming_kernels(self, cpu_model, pim_core_model):
        """The headline claim for the simple PIM core (paper Section 1)."""
        p = streaming_profile()
        cpu = cpu_model.run(p)
        pim = pim_core_model.run(p)
        assert pim.time_s < cpu.time_s
        assert pim.energy_j < cpu.energy_j

    def test_vault_parallelism_speeds_up(self, pim_core_model):
        p = streaming_profile()
        one = pim_core_model.run(p, vaults_used=1)
        four = pim_core_model.run(p, vaults_used=4)
        assert four.time_s < one.time_s


class TestPimAccelerator:
    def test_machine_label(self, pim_acc_model):
        assert pim_acc_model.run(streaming_profile()).machine == "PIM-Acc"

    def test_acc_no_slower_than_core(self, pim_core_model, pim_acc_model):
        p = streaming_profile()
        assert pim_acc_model.run(p).time_s <= pim_core_model.run(p).time_s

    def test_acc_energy_no_worse_than_core(self, pim_core_model, pim_acc_model):
        p = streaming_profile()
        assert pim_acc_model.run(p).energy_j <= pim_core_model.run(p).energy_j

    def test_compute_bound_accelerator(self, pim_acc_model):
        p = KernelProfile("dense", instructions=1e9, mem_instructions=1e6,
                          alu_ops=1e10, dram_bytes=1e6, llc_misses=1e4)
        e = pim_acc_model.run(p)
        acc = pim_acc_model.system.pim_accelerator
        throughput = acc.logic_units * acc.ops_per_unit_per_cycle * acc.frequency_hz
        assert e.time_s == pytest.approx(p.alu_ops / throughput)

    def test_memory_bound_accelerator(self, pim_acc_model):
        p = KernelProfile.streaming("mem", 64 * MB, 64 * MB, ops_per_byte=0.01)
        e = pim_acc_model.run(p)
        assert e.time_s > 0
        # Memory-bound: time tracks the internal service time, inflated by
        # the streaming efficiency factor.
        mem_time = pim_acc_model.dram.service_time(p.pim_bytes, mlp=16.0)
        assert e.time_s == pytest.approx(mem_time / 0.67, rel=0.01)


class TestConfigInteraction:
    def test_wider_simd_helps(self):
        p = streaming_profile()
        narrow = PimCoreModel(SystemConfig(pim_core=PimCoreConfig(simd_width=1)))
        wide = PimCoreModel(SystemConfig(pim_core=PimCoreConfig(simd_width=8)))
        assert wide.run(p).time_s < narrow.run(p).time_s
