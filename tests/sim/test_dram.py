"""Unit tests for the DRAM bandwidth/latency models."""

import pytest

from repro.config import StackedMemoryConfig
from repro.sim.dram import DramTimings, OffChipDram, StackedDramInternal

GB = 1024**3


class TestDramTimings:
    def test_zero_request_zero_time(self):
        t = DramTimings(peak_bandwidth=32 * GB, access_latency_s=100e-9)
        assert t.service_time(0, 0, mlp=4) == 0.0

    def test_bandwidth_bound_regime(self):
        """Huge sequential transfers: time ~ bytes / sustained bandwidth."""
        t = DramTimings(peak_bandwidth=32 * GB, access_latency_s=100e-9,
                        bandwidth_efficiency=0.8)
        one_gb = float(GB)
        time = t.service_time(one_gb, requests=one_gb / 64, mlp=1e9)
        assert time == pytest.approx(one_gb / (32 * GB * 0.8))

    def test_latency_bound_regime(self):
        """Few, dependent requests: time ~ requests * latency / mlp."""
        t = DramTimings(peak_bandwidth=32 * GB, access_latency_s=100e-9)
        time = t.service_time(64 * 100, requests=100, mlp=1.0)
        assert time == pytest.approx(100 * 100e-9)

    def test_mlp_hides_latency(self):
        t = DramTimings(peak_bandwidth=32 * GB, access_latency_s=100e-9)
        serial = t.service_time(64 * 1000, 1000, mlp=1.0)
        parallel = t.service_time(64 * 1000, 1000, mlp=8.0)
        assert parallel < serial

    def test_sustained_below_peak(self):
        t = DramTimings(peak_bandwidth=32 * GB, access_latency_s=100e-9,
                        bandwidth_efficiency=0.8)
        assert t.sustained_bandwidth == pytest.approx(0.8 * 32 * GB)


class TestOffChip:
    def test_service_time_positive(self):
        assert OffChipDram().service_time(1 << 20) > 0.0


class TestStackedInternal:
    def test_internal_faster_than_offchip(self):
        """The 8x internal bandwidth is the core PIM advantage; even a
        single vault's share plus lower latency beats the off-chip path
        for the latency-bound streams the kernels produce."""
        bytes_ = 64.0 * 100_000
        off = OffChipDram().service_time(bytes_, mlp=6)
        internal = StackedDramInternal().service_time(bytes_, mlp=6, vaults_used=1)
        assert internal < off

    def test_per_vault_bandwidth(self):
        mem = StackedMemoryConfig()
        d = StackedDramInternal(mem)
        assert d.per_vault_bandwidth == pytest.approx(
            mem.internal_bandwidth * 0.8 / mem.num_vaults
        )

    def test_more_vaults_is_faster(self):
        d = StackedDramInternal()
        one = d.service_time(1 << 30, vaults_used=1)
        four = d.service_time(1 << 30, vaults_used=4)
        assert four < one

    def test_vaults_clamped_to_config(self):
        d = StackedDramInternal()
        capped = d.service_time(1 << 30, vaults_used=1000)
        full = d.service_time(1 << 30, vaults_used=16)
        assert capped == pytest.approx(full)

    def test_zero_bytes(self):
        assert StackedDramInternal().service_time(0.0) == 0.0
