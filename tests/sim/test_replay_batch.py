"""Property tests: config-batched replay is bit-identical to serial.

:func:`repro.sim.batch.replay_batch` evaluates N cache configurations
over one shared run stream; these tests drive random traces through
random config batches and require every per-config result — stats,
flush traffic, published counters, timing clocks — to match the serial
``replay_fast`` path exactly.  Bit-identity (not closeness) is the
contract: a sweep must be allowed to switch between the two paths
without changing a single figure.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, SocConfig
from repro.obs import recording
from repro.sim.batch import replay_batch, replay_timing_batch, timing_batch_for_socs
from repro.sim.cache import CacheHierarchy
from repro.sim.timing import TimingParameters, TimingSimulator
from repro.sim.trace import MemoryTrace, TraceRecorder

#: Deliberately small, deliberately *heterogeneous* geometries: different
#: set counts, associativities (including direct-mapped), and LLC sizes,
#: so batched planes are padded and per-config indexing bugs surface.
GEOMETRIES = [
    (512, 2, 2048, 2),
    (1024, 1, 4096, 2),
    (1024, 2, 4096, 4),
    (2048, 4, 8192, 8),
    (4096, 4, 16384, 4),
]


def make_soc(l1_bytes, l1_assoc, llc_bytes, llc_assoc) -> SocConfig:
    return SocConfig(
        l1=CacheConfig(size_bytes=l1_bytes, associativity=l1_assoc),
        l2=CacheConfig(size_bytes=llc_bytes, associativity=llc_assoc),
    )


soc_batches = st.lists(
    st.sampled_from(GEOMETRIES), min_size=1, max_size=4
).map(lambda geos: [make_soc(*g) for g in geos])

address_lists = st.lists(
    st.integers(min_value=0, max_value=1 << 14), min_size=0, max_size=300
)


def make_trace(addresses, writes) -> MemoryTrace:
    return MemoryTrace(
        addresses=np.array(addresses, dtype=np.uint64),
        is_write=np.array(writes, dtype=bool),
    )


class TestCacheBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(addresses=address_lists, socs=soc_batches, data=st.data())
    def test_bit_identical_to_serial(self, addresses, socs, data):
        writes = [data.draw(st.booleans()) for _ in addresses]
        flush = data.draw(st.booleans())
        serial = [
            CacheHierarchy(soc).replay_fast(
                make_trace(addresses, writes), flush=flush
            )
            for soc in socs
        ]
        batch = replay_batch(make_trace(addresses, writes), socs, flush=flush)
        assert batch == serial

    @settings(max_examples=20, deadline=None)
    @given(
        stride=st.integers(min_value=1, max_value=4096),
        count=st.integers(min_value=1, max_value=150),
        socs=soc_batches,
    )
    def test_strided_traces(self, stride, count, socs):
        def rec_trace():
            rec = TraceRecorder(granularity=8)
            for i in range(count):
                rec.read(i * stride, 64)
            return rec.trace()

        serial = [CacheHierarchy(soc).replay_fast(rec_trace()) for soc in socs]
        assert replay_batch(rec_trace(), socs) == serial

    def test_duplicate_configs_get_identical_results(self):
        rng = np.random.default_rng(3)
        trace = make_trace(
            rng.integers(0, 1 << 13, 400, dtype=np.uint64),
            rng.random(400) < 0.3,
        )
        soc = make_soc(*GEOMETRIES[0])
        out = replay_batch(trace, [soc, soc, soc])
        assert out[0] == out[1] == out[2]

    def test_empty_config_list(self):
        assert replay_batch(make_trace([0, 64], [False, True]), []) == []

    def test_empty_trace(self):
        socs = [make_soc(*g) for g in GEOMETRIES[:2]]
        serial = [CacheHierarchy(s).replay_fast(make_trace([], [])) for s in socs]
        assert replay_batch(make_trace([], []), socs) == serial

    def test_strict_mode_passes_on_valid_trace(self):
        rng = np.random.default_rng(5)
        trace = make_trace(
            rng.integers(0, 1 << 12, 300, dtype=np.uint64),
            rng.random(300) < 0.5,
        )
        socs = [make_soc(*g) for g in GEOMETRIES[:3]]
        serial = [
            CacheHierarchy(s).replay_fast(
                make_trace(trace.addresses, trace.is_write), strict=True
            )
            for s in socs
        ]
        assert replay_batch(trace, socs, strict=True) == serial

    def test_classmethod_entry_point(self):
        trace = make_trace([0, 64, 128, 0], [False, True, False, False])
        socs = [make_soc(*GEOMETRIES[0])]
        assert CacheHierarchy.replay_batch(trace, socs) == replay_batch(
            make_trace(trace.addresses, trace.is_write), socs
        )

    def test_instructions_hint_forwarded(self):
        trace = make_trace([0, 4096, 8192], [True, True, True])
        soc = make_soc(*GEOMETRIES[0])
        serial = CacheHierarchy(soc).replay_fast(
            make_trace(trace.addresses, trace.is_write), instructions_hint=123.0
        )
        batch = replay_batch(trace, [soc], instructions_hint=123.0)[0]
        assert batch == serial
        assert batch.instructions_hint == 123.0


class TestTimingBatchEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(
        addresses=address_lists,
        socs=soc_batches,
        mshrs=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_bit_identical_to_serial(self, addresses, socs, mshrs, data):
        writes = [data.draw(st.booleans()) for _ in addresses]
        params = TimingParameters(mshrs=mshrs)
        serial = [
            TimingSimulator(soc, params).replay_fast(make_trace(addresses, writes))
            for soc in socs
        ]
        batch = timing_batch_for_socs(make_trace(addresses, writes), socs, params)
        assert batch == serial

    @settings(max_examples=20, deadline=None)
    @given(addresses=address_lists, data=st.data())
    def test_heterogeneous_parameters(self, addresses, data):
        """Each simulator may carry its own latency/MSHR parameters."""
        writes = [data.draw(st.booleans()) for _ in addresses]
        sims = [
            TimingSimulator(make_soc(*GEOMETRIES[0]), TimingParameters(mshrs=1)),
            TimingSimulator(
                make_soc(*GEOMETRIES[3]),
                TimingParameters(dram_cycles=333, dram_issue_interval_cycles=0.0),
            ),
            TimingSimulator(
                make_soc(*GEOMETRIES[1]), TimingParameters(llc_hit_cycles=7)
            ),
        ]
        serial = [s.replay_fast(make_trace(addresses, writes)) for s in sims]
        batch = replay_timing_batch(make_trace(addresses, writes), sims)
        assert batch == serial

    def test_strict_mode(self):
        rng = np.random.default_rng(11)
        trace = make_trace(
            rng.integers(0, 1 << 13, 500, dtype=np.uint64),
            rng.random(500) < 0.3,
        )
        socs = [make_soc(*g) for g in GEOMETRIES[:3]]
        params = TimingParameters(mshrs=2)
        serial = [
            TimingSimulator(s, params).replay_fast(
                make_trace(trace.addresses, trace.is_write), strict=True
            )
            for s in socs
        ]
        assert timing_batch_for_socs(trace, socs, params, strict=True) == serial

    def test_empty_simulator_list(self):
        assert replay_timing_batch(make_trace([0], [False]), []) == []

    def test_classmethod_entry_point(self):
        trace = make_trace([0, 64, 0, 4096], [False, False, True, False])
        sims = [TimingSimulator(make_soc(*GEOMETRIES[0]))]
        assert TimingSimulator.replay_batch(trace, sims) == replay_timing_batch(
            make_trace(trace.addresses, trace.is_write), sims
        )


class TestBatchCounters:
    def test_batch_publishes_own_counters(self):
        rng = np.random.default_rng(2)
        trace = make_trace(
            rng.integers(0, 1 << 12, 200, dtype=np.uint64),
            rng.random(200) < 0.2,
        )
        socs = [make_soc(*g) for g in GEOMETRIES[:3]]
        with recording() as obs:
            replay_batch(trace, socs)
        counters = obs.counters.as_dict()
        assert counters["sim.replay_batch.batches"] == 1
        assert counters["sim.replay_batch.configs"] == 3
        assert counters["sim.replay_batch.runs"] == len(trace.line_runs()[0])
        # Per-config replay bookkeeping matches a 3-config serial sweep.
        assert counters["sim.cache.replays"] == 3
        assert counters["sim.cache.trace_accesses"] == 3 * len(trace)

    def test_shared_trace_hits_counts_memoized_runs(self):
        rng = np.random.default_rng(4)
        trace = make_trace(
            rng.integers(0, 1 << 12, 100, dtype=np.uint64),
            rng.random(100) < 0.2,
        )
        socs = [make_soc(*g) for g in GEOMETRIES[:2]]
        with recording() as obs:
            replay_batch(trace, socs)  # first call materializes the runs
            replay_batch(trace, socs)  # second call reuses the memo
        counters = obs.counters.as_dict()
        assert counters["sim.replay_batch.shared_trace_hits"] == 2

    def test_rejects_lines_beyond_int64(self):
        # uint64 byte addresses cap line numbers at 2**58, so forge an
        # exotic run stream through the memo cache to exercise the guard.
        trace = make_trace([0], [False])
        trace._line_runs_cache[64] = (
            np.array([1 << 63], dtype=np.uint64),
            np.array([1], dtype=np.int64),
            np.array([False]),
        )
        with pytest.raises(ValueError, match="2\\*\\*63"):
            replay_batch(trace, [make_soc(*GEOMETRIES[0])])
