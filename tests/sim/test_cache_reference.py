"""Property test: the cache simulator against an independent reference.

The reference model is a deliberately naive (slow, obviously-correct)
set-associative LRU cache; hypothesis drives both with random access
sequences and requires identical hit/miss/writeback behaviour.
"""


from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.sim.cache import Cache


class ReferenceCache:
    """Naive set-associative LRU cache, list-based."""

    def __init__(self, num_sets: int, assoc: int):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [[] for _ in range(num_sets)]  # [(tag, dirty)] MRU last
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def access(self, line: int, is_write: bool):
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        entries = self.sets[set_idx]
        for i, (t, dirty) in enumerate(entries):
            if t == tag:
                self.hits += 1
                entries.pop(i)
                entries.append((tag, dirty or is_write))
                return True, None
        self.misses += 1
        victim = None
        if len(entries) >= self.assoc:
            vt, vd = entries.pop(0)
            if vd:
                self.writebacks += 1
            victim = (vt * self.num_sets + set_idx, vd)
        entries.append((tag, is_write))
        return False, victim


accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
    min_size=0,
    max_size=400,
)


class TestAgainstReference:
    @settings(max_examples=60)
    @given(seq=accesses)
    def test_matches_reference_small_cache(self, seq):
        config = CacheConfig(size_bytes=1024, associativity=2)  # 8 sets
        cache = Cache(config)
        ref = ReferenceCache(config.num_sets, config.associativity)
        for line, is_write in seq:
            got = cache.access(line, is_write)
            want = ref.access(line, is_write)
            assert got == want
        assert cache.stats.hits == ref.hits
        assert cache.stats.misses == ref.misses
        assert cache.stats.writebacks == ref.writebacks

    @settings(max_examples=30)
    @given(seq=accesses)
    def test_matches_reference_direct_mapped(self, seq):
        config = CacheConfig(size_bytes=256, associativity=1)  # 4 lines
        cache = Cache(config)
        ref = ReferenceCache(config.num_sets, config.associativity)
        for line, is_write in seq:
            assert cache.access(line, is_write) == ref.access(line, is_write)

    @settings(max_examples=30)
    @given(seq=accesses)
    def test_matches_reference_fully_associative(self, seq):
        config = CacheConfig(size_bytes=512, associativity=8)  # 1 set
        cache = Cache(config)
        assert config.num_sets == 1
        ref = ReferenceCache(1, 8)
        for line, is_write in seq:
            assert cache.access(line, is_write) == ref.access(line, is_write)

    @settings(max_examples=30)
    @given(seq=accesses)
    def test_invariant_hits_plus_misses(self, seq):
        cache = Cache(CacheConfig(size_bytes=1024, associativity=4))
        for line, is_write in seq:
            cache.access(line, is_write)
        assert cache.stats.hits + cache.stats.misses == len(seq)
        assert cache.stats.writebacks <= cache.stats.misses
