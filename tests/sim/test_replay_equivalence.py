"""Property tests: ``replay_fast`` is bit-identical to per-access replay.

The fast path consumes run-length-compressed line runs
(:meth:`MemoryTrace.line_runs`) instead of individual accesses; these
tests drive both paths with random, streaming, strided, and write-heavy
traces and require identical :class:`HierarchyStats` — every counter at
every level, not just the headline traffic numbers.  A second group pins
the lazy range-record ``TraceRecorder`` to the old eager expansion,
byte for byte.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import CACHE_LINE_BYTES, CacheConfig, SocConfig
from repro.obs import recording
from repro.sim.cache import CacheHierarchy, replay_trace
from repro.sim.trace import MemoryTrace, TraceRecorder


def tiny_soc() -> SocConfig:
    """A deliberately small hierarchy so random traces cause evictions."""
    return SocConfig(
        l1=CacheConfig(size_bytes=1024, associativity=2),
        l2=CacheConfig(size_bytes=4096, associativity=4),
    )


def assert_equivalent(trace: MemoryTrace, soc: SocConfig | None = None):
    oracle = CacheHierarchy(soc).replay(trace)
    fast = CacheHierarchy(soc).replay_fast(trace)
    assert fast == oracle
    # Also without the end-of-trace flush.
    oracle_nf = CacheHierarchy(soc).replay(trace, flush=False)
    fast_nf = CacheHierarchy(soc).replay_fast(trace, flush=False)
    assert fast_nf == oracle_nf


address_lists = st.lists(
    st.integers(min_value=0, max_value=1 << 14), min_size=0, max_size=300
)


class TestReplayEquivalence:
    @settings(max_examples=60)
    @given(addresses=address_lists, data=st.data())
    def test_random_traces(self, addresses, data):
        writes = [data.draw(st.booleans()) for _ in addresses]
        trace = MemoryTrace(
            addresses=np.array(addresses, dtype=np.uint64),
            is_write=np.array(writes, dtype=bool),
        )
        assert_equivalent(trace, tiny_soc())

    @settings(max_examples=25)
    @given(
        start=st.integers(min_value=0, max_value=1 << 12),
        size=st.integers(min_value=1, max_value=1 << 14),
        gran=st.sampled_from([1, 4, 8, 64]),
        write=st.booleans(),
    )
    def test_streaming_traces(self, start, size, gran, write):
        rec = TraceRecorder(granularity=gran)
        (rec.write if write else rec.read)(start, size)
        assert_equivalent(rec.trace(), tiny_soc())

    @settings(max_examples=25)
    @given(
        stride=st.integers(min_value=1, max_value=4096),
        count=st.integers(min_value=1, max_value=200),
        span=st.integers(min_value=8, max_value=256),
    )
    def test_strided_traces(self, stride, count, span):
        rec = TraceRecorder(granularity=8)
        for i in range(count):
            rec.read(i * stride, span)
        assert_equivalent(rec.trace(), tiny_soc())

    @settings(max_examples=25)
    @given(
        passes=st.integers(min_value=1, max_value=6),
        size=st.integers(min_value=64, max_value=8192),
        write_fraction=st.floats(min_value=0.5, max_value=1.0),
    )
    def test_write_heavy_traces(self, passes, size, write_fraction, ):
        rec = TraceRecorder(granularity=8)
        rng = np.random.default_rng(size)
        for _ in range(passes):
            if rng.random() < write_fraction:
                rec.write(0, size)
            else:
                rec.read(0, size)
        assert_equivalent(rec.trace(), tiny_soc())

    def test_full_size_soc_mixed_trace(self):
        """One large deterministic trace on the paper's real geometry."""
        rng = np.random.default_rng(7)
        rec = TraceRecorder(granularity=8)
        rec.read(0, 256 * 1024)
        rec.write(1 << 24, 128 * 1024)
        for i in range(500):
            rec.read((1 << 26) + i * 4096, 64)
        scattered = rng.integers(0, 1 << 22, 20_000, dtype=np.uint64)
        rec.read_indices(1 << 28, scattered, element_size=4)
        assert_equivalent(rec.trace())

    def test_empty_trace(self):
        assert_equivalent(TraceRecorder().trace())

    def test_replay_trace_defaults_to_fast_path(self):
        rec = TraceRecorder(granularity=8)
        rec.write(0, 64 * 1024)
        assert replay_trace(rec.trace()) == replay_trace(rec.trace(), fast=False)


class TestLineRuns:
    def test_runs_fold_consecutive_same_line(self):
        trace = MemoryTrace(
            addresses=np.array([0, 8, 63, 64, 0], dtype=np.uint64),
            is_write=np.array([False, True, False, False, False]),
        )
        lines, counts, writes = trace.line_runs()
        assert lines.tolist() == [0, 1, 0]
        assert counts.tolist() == [3, 1, 1]
        assert writes.tolist() == [True, False, False]

    def test_empty(self):
        lines, counts, writes = TraceRecorder().trace().line_runs()
        assert len(lines) == len(counts) == len(writes) == 0

    @settings(max_examples=60)
    @given(addresses=address_lists, data=st.data())
    def test_runs_reconstruct_line_sequence(self, addresses, data):
        writes = [data.draw(st.booleans()) for _ in addresses]
        trace = MemoryTrace(
            addresses=np.array(addresses, dtype=np.uint64),
            is_write=np.array(writes, dtype=bool),
        )
        lines, counts, run_writes = trace.line_runs()
        assert int(counts.sum()) == len(trace)
        reconstructed = np.repeat(lines, counts)
        np.testing.assert_array_equal(reconstructed, trace.line_addresses())
        # No two adjacent runs share a line, and write flags OR-fold.
        assert not np.any(lines[1:] == lines[:-1])
        expected = np.logical_or.reduceat(trace.is_write, np.cumsum(np.append(0, counts[:-1]))) if len(lines) else run_writes
        np.testing.assert_array_equal(run_writes, expected)


def registry_output(trace: MemoryTrace, soc: SocConfig, fast: bool) -> dict:
    """The full counter-registry export of one replay on a fresh hierarchy.

    ``validate.*`` counters are excluded: under REPRO_STRICT the two
    engines run different *structural* self-checks (only replay_fast
    consumes line runs), so check counts differ by design while every
    simulation statistic must still match exactly.  ``core.resilience.*``
    counters are filtered the same way: fault bookkeeping (retries,
    checkpoint writes) describes the harness run, not the simulation,
    and must never enter an equivalence verdict.  ``sim.replay_batch.*``
    is batch-shape bookkeeping (configs per batch, shared-trace hits),
    published only by the batched engine, and likewise excluded — the
    batched-vs-serial test below asserts every *simulation* counter
    matches across engines.
    """
    excluded = ("validate.", "core.resilience.", "sim.replay_batch.")
    with recording() as rec:
        hierarchy = CacheHierarchy(soc)
        (hierarchy.replay_fast if fast else hierarchy.replay)(trace)
    return {
        name: value
        for name, value in rec.counters.as_dict().items()
        if not name.startswith(excluded)
    }


class TestCounterRegistryEquivalence:
    """Differential: both replay paths publish *identical registries*.

    Stricter than comparing ``HierarchyStats``: the assertion covers the
    exported counter names and every value — L1/LLC hits, misses,
    writebacks, DRAM line traffic, replay/access bookkeeping — i.e. the
    exact payload a run manifest would contain.
    """

    @settings(max_examples=40)
    @given(addresses=address_lists, data=st.data())
    def test_registry_identical_on_random_traces(self, addresses, data):
        writes = [data.draw(st.booleans()) for _ in addresses]
        trace = MemoryTrace(
            addresses=np.array(addresses, dtype=np.uint64),
            is_write=np.array(writes, dtype=bool),
        )
        oracle = registry_output(trace, tiny_soc(), fast=False)
        fast = registry_output(trace, tiny_soc(), fast=True)
        assert fast == oracle
        if len(trace):
            assert oracle["sim.cache.l1.accesses"] == len(trace)
        assert oracle["sim.cache.replays"] == 1
        assert oracle["sim.cache.trace_accesses"] == len(trace)

    @settings(max_examples=20)
    @given(
        stride=st.integers(min_value=1, max_value=4096),
        count=st.integers(min_value=1, max_value=120),
        span=st.integers(min_value=8, max_value=256),
    )
    def test_registry_identical_on_strided_traces(self, stride, count, span):
        rec = TraceRecorder(granularity=8)
        for i in range(count):
            rec.read(i * stride, span)
        trace = rec.trace()
        assert registry_output(trace, tiny_soc(), fast=True) == registry_output(
            trace, tiny_soc(), fast=False
        )

    @settings(max_examples=25)
    @given(addresses=address_lists, data=st.data())
    def test_registry_identical_batched_vs_serial_sweep(self, addresses, data):
        """A batched sweep publishes the same simulation registry as N
        serial replays — ``sim.cache.*`` totals across configs match
        exactly; only the batch-bookkeeping namespace differs."""
        from repro.sim.batch import replay_batch

        writes = [data.draw(st.booleans()) for _ in addresses]

        def trace():
            return MemoryTrace(
                addresses=np.array(addresses, dtype=np.uint64),
                is_write=np.array(writes, dtype=bool),
            )

        socs = [
            tiny_soc(),
            SocConfig(
                l1=CacheConfig(size_bytes=512, associativity=1),
                l2=CacheConfig(size_bytes=2048, associativity=2),
            ),
            SocConfig(
                l1=CacheConfig(size_bytes=2048, associativity=4),
                l2=CacheConfig(size_bytes=8192, associativity=8),
            ),
        ]
        excluded = ("validate.", "core.resilience.", "sim.replay_batch.")
        with recording() as serial_rec:
            for soc in socs:
                CacheHierarchy(soc).replay_fast(trace())
        with recording() as batch_rec:
            replay_batch(trace(), socs)
        serial = {
            k: v
            for k, v in serial_rec.counters.as_dict().items()
            if not k.startswith(excluded)
        }
        batched = {
            k: v
            for k, v in batch_rec.counters.as_dict().items()
            if not k.startswith(excluded)
        }
        assert batched == serial
        assert batch_rec.counters.as_dict()["sim.replay_batch.configs"] == len(socs)

    def test_second_replay_publishes_delta_not_cumulative(self):
        rec = TraceRecorder(granularity=8)
        rec.read(0, 8 * 1024)
        trace = rec.trace()
        with recording() as obs:
            hierarchy = CacheHierarchy(tiny_soc())
            hierarchy.replay_fast(trace)
            first = dict(obs.counters.as_dict())
            hierarchy.replay_fast(trace)
        second = obs.counters.as_dict()
        # The registry accumulates per-replay deltas, so two replays of
        # the same trace publish exactly twice the accesses of one --
        # even though the hierarchy's own stats objects are cumulative.
        assert second["sim.cache.replays"] == 2
        assert (
            second["sim.cache.l1.accesses"] == 2 * first["sim.cache.l1.accesses"]
        )

    def test_disabled_recorder_publishes_nothing(self):
        rec = TraceRecorder(granularity=8)
        rec.read(0, 4 * 1024)
        trace = rec.trace()
        with recording() as obs:
            pass  # recorder active only inside the block
        CacheHierarchy(tiny_soc()).replay_fast(trace)
        assert obs.counters.as_dict() == {}


class EagerRecorder:
    """The pre-optimization recorder: expands ranges at record time."""

    def __init__(self, granularity: int = 8):
        self.granularity = granularity
        self._chunks: list[tuple[np.ndarray, bool]] = []

    def read(self, base, size):
        self._record(base, size, False)

    def write(self, base, size):
        self._record(base, size, True)

    def read_indices(self, base, indices, element_size):
        addrs = np.uint64(base) + np.asarray(indices, dtype=np.uint64) * np.uint64(
            element_size
        )
        self._chunks.append((addrs, False))

    def _record(self, base, size, is_write):
        if size == 0:
            return
        count = (size + self.granularity - 1) // self.granularity
        addrs = np.uint64(base) + np.arange(count, dtype=np.uint64) * np.uint64(
            self.granularity
        )
        self._chunks.append((addrs, is_write))

    def trace(self) -> MemoryTrace:
        if not self._chunks:
            return MemoryTrace(np.empty(0, np.uint64), np.empty(0, bool))
        return MemoryTrace(
            addresses=np.concatenate([c for c, _ in self._chunks]),
            is_write=np.concatenate(
                [np.full(c.shape[0], w, dtype=bool) for c, w in self._chunks]
            ),
        )


ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "read_indices"]),
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=0, max_value=2048),
    ),
    min_size=0,
    max_size=30,
)


class TestLazyRecorderMatchesEager:
    @settings(max_examples=60)
    @given(sequence=ops, gran=st.sampled_from([1, 7, 8, 64]))
    def test_byte_for_byte(self, sequence, gran):
        lazy = TraceRecorder(granularity=gran)
        eager = EagerRecorder(granularity=gran)
        for op, base, size in sequence:
            if op == "read_indices":
                indices = np.arange(size % 17, dtype=np.uint64)
                lazy.read_indices(base, indices, 4)
                eager.read_indices(base, indices, 4)
            else:
                getattr(lazy, op)(base, size)
                getattr(eager, op)(base, size)
        got, want = lazy.trace(), eager.trace()
        np.testing.assert_array_equal(got.addresses, want.addresses)
        np.testing.assert_array_equal(got.is_write, want.is_write)
        assert lazy.num_accesses == len(want)

    def test_num_accesses_without_materializing(self):
        rec = TraceRecorder(granularity=8)
        rec.read(0, 1 << 30)  # a billion-byte range is O(1) to record
        assert rec.num_accesses == (1 << 30) // 8
        assert rec._ops[0][0] == 0  # still a compact range record

    def test_write_flag_in_line_runs_partial_line(self):
        """A write run covering part of a line still marks it dirty."""
        rec = TraceRecorder(granularity=8)
        rec.read(0, CACHE_LINE_BYTES)
        rec.write(CACHE_LINE_BYTES // 2, 8)
        stats = CacheHierarchy().replay_fast(rec.trace(), flush=True)
        assert stats.dram_line_writes == 1
