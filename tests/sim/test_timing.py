"""Unit + validation tests for the event-driven timing simulator."""

import pytest

from repro.sim.cpu import CpuModel
from repro.sim.profile import KernelProfile
from repro.sim.timing import TimingParameters, TimingSimulator
from repro.sim.trace import TraceRecorder

MB = 1024 * 1024


def streaming_trace(size_bytes, granularity=64):
    rec = TraceRecorder(granularity=granularity)
    rec.read(0, size_bytes)
    return rec.trace()


def resident_trace(size_bytes, passes=8):
    rec = TraceRecorder(granularity=64)
    for _ in range(passes):
        rec.read(0, size_bytes)
    return rec.trace()


class TestBasics:
    def test_empty_trace(self):
        rec = TraceRecorder()
        result = TimingSimulator().replay(rec.trace())
        assert result.cycles == 0.0
        assert result.accesses == 0

    def test_cached_trace_is_compute_bound(self):
        trace = resident_trace(16 * 1024, passes=64)
        result = TimingSimulator().replay(trace, instructions_per_access=4.0)
        # Only the 256 compulsory misses stall; the other 63 passes hit.
        assert result.stall_fraction < 0.2

    def test_streaming_trace_is_memory_bound(self):
        trace = streaming_trace(8 * MB)
        result = TimingSimulator().replay(trace, instructions_per_access=1.0)
        assert result.stall_fraction > 0.5
        assert result.dram_misses == 8 * MB // 64

    def test_more_mshrs_is_faster_on_streams(self):
        trace = streaming_trace(2 * MB)
        narrow = TimingSimulator(params=TimingParameters(mshrs=1)).replay(trace)
        wide = TimingSimulator(params=TimingParameters(mshrs=8)).replay(trace)
        assert wide.cycles < narrow.cycles

    def test_bandwidth_floor(self):
        """Even with unlimited MSHRs, DRAM issue spacing enforces the
        channel bandwidth.

        Uses replay_fast: with every access missing to DRAM and 10k
        MSHRs, the scalar oracle's O(mshrs) in-flight filtering makes it
        ~100x slower on this trace; the deque-based fast path is
        bit-identical (see test_replay_fast_matches_scalar_oracle).
        """
        trace = streaming_trace(2 * MB)
        result = TimingSimulator(
            params=TimingParameters(mshrs=10_000)
        ).replay_fast(trace, instructions_per_access=0.1)
        lines = 2 * MB // 64
        assert result.cycles >= lines * 5.0 * 0.99

    def test_replay_fast_matches_scalar_oracle(self, rng):
        """replay and replay_fast return bit-identical TimingResults on a
        small trace mixing hits, LLC hits, and MSHR-limited misses."""
        rec = TraceRecorder(granularity=8)
        rec.read(0, 64 * 1024)
        rec.read(0, 64 * 1024)  # L1/LLC reuse
        for a in rng.integers(0, 1 << 26, size=2000):
            rec.read(int(a) * 64, 8)
        rec.write(0, 16 * 1024)
        trace = rec.trace()
        for params in (
            TimingParameters(),
            TimingParameters(mshrs=1),
            TimingParameters(mshrs=10_000),
        ):
            scalar = TimingSimulator(params=params).replay(trace)
            fast = TimingSimulator(params=params).replay_fast(trace)
            assert scalar == fast


class TestRooflineValidation:
    def test_agrees_with_analytic_model_on_streaming_kernel(self):
        """The event-driven replay and the analytic roofline must agree
        within 2x on a streaming kernel (they share no code path)."""
        size = 8 * MB
        trace = streaming_trace(size)
        profile = KernelProfile.streaming(
            "k", size, 0, ops_per_byte=0.1, instruction_overhead=0.05
        )
        analytic = CpuModel().run(profile).time_s
        instructions_per_access = profile.instructions / len(trace)
        event = TimingSimulator().replay(
            trace, instructions_per_access=instructions_per_access
        ).time_s()
        assert event == pytest.approx(analytic, rel=1.0)

    def test_agrees_on_cache_resident_kernel(self):
        size = 256 * 1024
        passes = 8
        trace = resident_trace(size, passes)
        profile = KernelProfile.cache_resident(
            "k", bytes_touched=size, reuse_factor=passes, ops_per_byte=1.0
        )
        analytic = CpuModel().run(profile).time_s
        instructions_per_access = profile.instructions / len(trace)
        event = TimingSimulator().replay(
            trace, instructions_per_access=instructions_per_access
        ).time_s()
        assert event == pytest.approx(analytic, rel=1.0)

    def test_scattered_costs_more_per_useful_byte(self, rng):
        """Random 8-byte touches fetch a whole 64 B line each: the cost
        per *useful* byte is ~8x that of a sequential stream."""
        stream = streaming_trace(1 * MB)
        n_touches = len(stream)
        rec = TraceRecorder(granularity=8)
        addresses = rng.integers(0, 64 * MB // 64, size=n_touches) * 64
        for a in addresses:
            rec.read(int(a), 8)
        scattered = rec.trace()
        sim = TimingSimulator()
        stream_per_byte = sim.replay(stream).cycles / (1 * MB)
        scatter_per_byte = sim.replay(scattered).cycles / (n_touches * 8)
        assert scatter_per_byte > 4 * stream_per_byte
