"""Tests for columnar trace artifacts (:mod:`repro.sim.artifact`).

The contract mirrors the checkpoint/memo layers': atomic writes, loads
that verify structure and checksums, quarantine-and-rebuild on damage.
The replay-facing half of the contract is bit-identity: a replay from a
memory-mapped artifact must equal a replay of the original in-memory
trace, stat for stat.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, SocConfig
from repro.obs import recording
from repro.sim.artifact import (
    _MAGIC,
    _data_start,
    ArtifactError,
    TraceArtifact,
    TraceStore,
)
from repro.sim.batch import replay_batch
from repro.sim.cache import CacheHierarchy
from repro.sim.trace import MemoryTrace


def small_soc() -> SocConfig:
    return SocConfig(
        l1=CacheConfig(size_bytes=1024, associativity=2),
        l2=CacheConfig(size_bytes=4096, associativity=4),
    )


def random_trace(seed: int = 0, n: int = 500) -> MemoryTrace:
    rng = np.random.default_rng(seed)
    return MemoryTrace(
        addresses=rng.integers(0, 1 << 16, n, dtype=np.uint64),
        is_write=rng.random(n) < 0.4,
    )


def header_span(raw: bytes) -> tuple[int, dict]:
    """(data_start, parsed header) of a serialized artifact."""
    header_len = int.from_bytes(raw[len(_MAGIC) : len(_MAGIC) + 8], "little")
    header = json.loads(raw[len(_MAGIC) + 8 : len(_MAGIC) + 8 + header_len])
    return _data_start(header_len), header


class TestRoundTrip:
    def test_save_load_replay_bit_identity(self, tmp_path):
        trace = random_trace(1)
        art = TraceArtifact.from_trace(trace, workload="unit")
        path = art.save(tmp_path / "t.trace")
        assert path.exists()
        loaded = TraceArtifact.load(path)
        assert loaded.workload == "unit"
        assert loaded.content_hash == art.content_hash
        assert loaded.code_version == art.code_version
        assert loaded.num_accesses == len(trace)
        assert loaded.num_runs == art.num_runs
        # Columns survive byte for byte.
        np.testing.assert_array_equal(loaded.addresses, trace.addresses)
        np.testing.assert_array_equal(loaded.is_write, trace.is_write)
        # Replay from the mmap'd artifact equals replay of the original.
        direct = CacheHierarchy(small_soc()).replay_fast(random_trace(1))
        assert CacheHierarchy(small_soc()).replay_fast(loaded.trace()) == direct
        assert replay_batch(loaded.trace(), [small_soc()])[0] == direct

    def test_trace_preseeds_line_runs_memo(self, tmp_path):
        art = TraceArtifact.from_trace(random_trace(2), workload="memo")
        loaded = TraceArtifact.load(art.save(tmp_path / "t.trace"))
        replayed = loaded.trace()
        assert art.line_bytes in replayed._line_runs_cache
        lines, counts, writes = replayed.line_runs()
        np.testing.assert_array_equal(lines, art.run_lines)
        np.testing.assert_array_equal(counts, art.run_counts)
        np.testing.assert_array_equal(writes, art.run_writes)

    def test_load_without_mmap(self, tmp_path):
        art = TraceArtifact.from_trace(random_trace(3), workload="copy")
        loaded = TraceArtifact.load(art.save(tmp_path / "t.trace"), mmap=False)
        assert not isinstance(loaded.addresses, np.memmap)
        np.testing.assert_array_equal(loaded.addresses, art.addresses)

    def test_empty_trace_round_trips(self, tmp_path):
        empty = MemoryTrace(np.empty(0, np.uint64), np.empty(0, bool))
        art = TraceArtifact.from_trace(empty, workload="empty")
        loaded = TraceArtifact.load(art.save(tmp_path / "e.trace"))
        assert loaded.num_accesses == 0
        assert loaded.num_runs == 0
        direct = CacheHierarchy(small_soc()).replay_fast(
            MemoryTrace(np.empty(0, np.uint64), np.empty(0, bool))
        )
        assert CacheHierarchy(small_soc()).replay_fast(loaded.trace()) == direct

    def test_save_leaves_no_tmp_files(self, tmp_path):
        TraceArtifact.from_trace(random_trace(4)).save(tmp_path / "t.trace")
        assert [p.name for p in tmp_path.iterdir()] == ["t.trace"]

    @settings(max_examples=20, deadline=None)
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 14), max_size=120
        ),
        data=st.data(),
    )
    def test_round_trip_property(self, tmp_path_factory, addresses, data):
        writes = [data.draw(st.booleans()) for _ in addresses]
        trace = MemoryTrace(
            addresses=np.array(addresses, dtype=np.uint64),
            is_write=np.array(writes, dtype=bool),
        )
        d = tmp_path_factory.mktemp("artifacts")
        art = TraceArtifact.from_trace(trace)
        loaded = TraceArtifact.load(art.save(d / "t.trace"))
        rebuilt = MemoryTrace(
            addresses=np.array(addresses, dtype=np.uint64),
            is_write=np.array(writes, dtype=bool),
        )
        assert CacheHierarchy(small_soc()).replay_fast(
            loaded.trace()
        ) == CacheHierarchy(small_soc()).replay_fast(rebuilt)


class TestValidation:
    @pytest.fixture
    def saved(self, tmp_path):
        art = TraceArtifact.from_trace(random_trace(5), workload="victim")
        path = art.save(tmp_path / "v.trace")
        return path, path.read_bytes()

    def test_bad_magic_rejected(self, saved):
        path, raw = saved
        path.write_bytes(b"NOTMAGIC" + raw[8:])
        with pytest.raises(ArtifactError, match="bad magic"):
            TraceArtifact.load(path)

    def test_torn_tail_rejected(self, saved):
        """A partially written data section is detected by size alone."""
        path, raw = saved
        path.write_bytes(raw[:-100])
        with pytest.raises(ArtifactError, match="torn artifact"):
            TraceArtifact.load(path)

    def test_truncated_header_rejected(self, saved):
        path, raw = saved
        path.write_bytes(raw[: len(_MAGIC) + 4])
        with pytest.raises(ArtifactError, match="truncated header"):
            TraceArtifact.load(path)

    def test_corrupt_header_json_rejected(self, saved):
        path, raw = saved
        body = bytearray(raw)
        body[len(_MAGIC) + 8] ^= 0xFF  # first header byte
        path.write_bytes(bytes(body))
        with pytest.raises(ArtifactError, match="corrupt header|schema"):
            TraceArtifact.load(path)

    def test_flipped_column_byte_rejected(self, saved):
        path, raw = saved
        data_start, header = header_span(raw)
        col = header["columns"][0]
        body = bytearray(raw)
        body[data_start + col["offset"] + 3] ^= 0xFF
        path.write_bytes(bytes(body))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            TraceArtifact.load(path)

    def test_content_hash_mismatch_rejected(self, saved):
        """Header/columns individually valid but mutually inconsistent."""
        path, raw = saved
        _, header = header_span(raw)
        stored = header["content_hash"]
        forged = ("0" if stored[0] != "0" else "1") + stored[1:]
        path.write_bytes(raw.replace(stored.encode(), forged.encode()))
        with pytest.raises(ArtifactError, match="content hash mismatch"):
            TraceArtifact.load(path)

    def test_verify_false_skips_checksums(self, saved):
        path, raw = saved
        data_start, header = header_span(raw)
        col = header["columns"][0]
        body = bytearray(raw)
        body[data_start + col["offset"] + 3] ^= 0xFF
        path.write_bytes(bytes(body))
        TraceArtifact.load(path, verify=False)  # caller opted out


class TestTraceStore:
    def build_counter(self, seed=6):
        calls = []

        def builder():
            calls.append(1)
            return random_trace(seed)

        return builder, calls

    def test_miss_builds_then_hit_reuses(self, tmp_path):
        store = TraceStore(directory=tmp_path)
        builder, calls = self.build_counter()
        with recording() as obs:
            first = store.get_or_build("gemm", builder)
            second = store.get_or_build("gemm", builder)
        assert len(calls) == 1
        assert first.content_hash == second.content_hash
        counters = obs.counters.as_dict()
        assert counters["sim.artifact.misses"] == 1
        assert counters["sim.artifact.saves"] == 1
        assert counters["sim.artifact.hits"] == 1

    def test_distinct_names_get_distinct_paths(self, tmp_path):
        store = TraceStore(directory=tmp_path)
        assert store.path_for("gemm") != store.path_for("texture")
        assert store.path_for("gemm", 64) != store.path_for("gemm", 32)

    def test_corrupt_artifact_quarantined_and_rebuilt(self, tmp_path):
        store = TraceStore(directory=tmp_path)
        builder, calls = self.build_counter()
        store.get_or_build("gemm", builder)
        path = store.path_for("gemm")
        raw = path.read_bytes()
        data_start, header = header_span(raw)
        body = bytearray(raw)
        body[data_start + header["columns"][0]["offset"]] ^= 0xFF
        path.write_bytes(bytes(body))
        with recording() as obs:
            rebuilt = store.get_or_build("gemm", builder)
        assert len(calls) == 2
        assert path.with_suffix(".corrupt").exists()
        assert rebuilt.content_hash == TraceArtifact.load(path).content_hash
        counters = obs.counters.as_dict()
        assert counters["sim.artifact.corrupt"] == 1
        assert counters["sim.artifact.misses"] == 1

    def test_stale_code_version_rebuilt(self, tmp_path):
        old = TraceStore(directory=tmp_path, version="v-old")
        new = TraceStore(directory=tmp_path, version="v-old")
        builder, calls = self.build_counter()
        old.get_or_build("gemm", builder)
        # Same key namespace, different recorded code version: the store
        # must notice the artifact header disagrees and rebuild.
        artifact = TraceArtifact.load(old.path_for("gemm"))
        forged = TraceArtifact(
            workload=artifact.workload,
            line_bytes=artifact.line_bytes,
            content_hash=artifact.content_hash,
            code_version="something-older",
            addresses=np.asarray(artifact.addresses),
            is_write=np.asarray(artifact.is_write),
            run_lines=np.asarray(artifact.run_lines),
            run_counts=np.asarray(artifact.run_counts),
            run_writes=np.asarray(artifact.run_writes),
        )
        forged.save(old.path_for("gemm"))
        new.get_or_build("gemm", builder)
        assert len(calls) == 2

    def test_sweep_failure_never_touches_store(self, tmp_path):
        """A failing per-config evaluation must not invalidate the trace."""
        store = TraceStore(directory=tmp_path)
        builder, calls = self.build_counter()
        artifact = store.get_or_build("gemm", builder)
        try:
            raise RuntimeError("config 3 exploded")
        except RuntimeError:
            pass
        again = store.get_or_build("gemm", builder)
        assert len(calls) == 1
        assert again.content_hash == artifact.content_hash
