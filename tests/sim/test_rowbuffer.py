"""Unit tests for the DRAM row-buffer model."""

import numpy as np
import pytest

from repro.sim.dram import OffChipDram
from repro.sim.rowbuffer import DramGeometry, RowBufferModel
from repro.sim.trace import TraceRecorder

MB = 1024 * 1024


def stream_lines(n_lines):
    return np.arange(n_lines, dtype=np.int64)


class TestGeometry:
    def test_lines_interleave_banks(self):
        g = DramGeometry()
        banks = [g.bank_and_row(i)[0] for i in range(8)]
        assert banks == list(range(8))

    def test_rows_advance_every_row_bytes(self):
        g = DramGeometry(num_banks=8, row_bytes=2048)
        lines_per_row_set = 2048 * 8 // 64
        assert g.bank_and_row(0)[1] == 0
        assert g.bank_and_row(lines_per_row_set)[1] == 1


class TestRowBufferModel:
    def test_queue_window_validated(self):
        with pytest.raises(ValueError):
            RowBufferModel(queue_window=0)

    def test_streaming_has_high_hit_rate(self):
        """Sequential line streams keep rows open: this is where the
        analytic model's 0.8 bandwidth efficiency comes from."""
        stats = RowBufferModel().replay_lines(stream_lines(16384))
        assert stats.hit_rate > 0.9

    def test_random_has_low_hit_rate(self, rng):
        lines = rng.integers(0, 1 << 20, size=16384)
        stats = RowBufferModel().replay_lines(lines)
        assert stats.hit_rate < 0.2

    def test_latency_between_hit_and_miss(self, rng):
        g = DramGeometry()
        lines = rng.integers(0, 1 << 20, size=4096)
        stats = RowBufferModel(g).replay_lines(lines)
        avg = stats.average_latency_ns(g)
        assert g.row_hit_ns <= avg <= g.row_miss_ns

    def test_frfcfs_reordering_helps(self, rng):
        """Interleaving two row-local streams: the FR-FCFS window groups
        row hits that strict FIFO would break up."""
        a = stream_lines(512)
        b = stream_lines(512) + (1 << 18)
        interleaved = np.empty(1024, dtype=np.int64)
        interleaved[0::2] = a
        interleaved[1::2] = b
        frfcfs = RowBufferModel(queue_window=16).replay_lines(interleaved)
        fifo = RowBufferModel(queue_window=1).replay_lines(interleaved)
        assert frfcfs.hit_rate >= fifo.hit_rate

    def test_empty(self):
        stats = RowBufferModel().replay_lines([])
        assert stats.hit_rate == 0.0
        assert stats.average_latency_ns(DramGeometry()) == 0.0


class TestConstantsGrounded:
    def test_streaming_latency_beats_analytic_constant(self):
        """The analytic off-chip latency (100 ns) is a *random-access*
        figure; row-hit streaming should land far below it, consistent
        with streaming kernels being bandwidth- (not latency-) bound."""
        g = DramGeometry()
        stats = RowBufferModel(g).replay_lines(stream_lines(16384))
        assert stats.average_latency_ns(g) < 25.0

    def test_random_latency_order_of_analytic_constant(self, rng):
        """Random access: row-miss latency plus queueing approaches the
        analytic model's 100 ns figure (the model adds controller and
        channel time on top of the DRAM core's ~45 ns)."""
        g = DramGeometry()
        lines = rng.integers(0, 1 << 22, size=8192)
        stats = RowBufferModel(g).replay_lines(lines)
        analytic_ns = OffChipDram().timings.access_latency_s * 1e9
        assert stats.average_latency_ns(g) > 0.35 * analytic_ns

    def test_recorded_kernel_trace(self):
        """A real recorded streaming trace (not synthetic line numbers)
        also sustains row locality."""
        rec = TraceRecorder(granularity=64)
        rec.read(0, 4 * MB)
        stats = RowBufferModel().replay_in_order(rec.trace())
        assert stats.hit_rate > 0.9
