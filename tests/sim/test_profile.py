"""Unit + property tests for KernelProfile."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.profile import KernelProfile

sizes = st.floats(min_value=1e3, max_value=1e9, allow_nan=False)


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            KernelProfile("k", instructions=-1, mem_instructions=0, alu_ops=0)

    def test_simd_fraction_bounds(self):
        with pytest.raises(ValueError):
            KernelProfile("k", 10, 1, 1, simd_fraction=1.5)

    def test_mem_cannot_exceed_instructions(self):
        with pytest.raises(ValueError):
            KernelProfile("k", instructions=5, mem_instructions=10, alu_ops=0)

    def test_pim_bytes_defaults_to_dram_bytes(self):
        p = KernelProfile("k", 100, 10, 10, dram_bytes=4096)
        assert p.pim_bytes == 4096


class TestDerived:
    def test_mpki(self):
        p = KernelProfile("k", instructions=10_000, mem_instructions=100,
                          alu_ops=0, llc_misses=150)
        assert p.mpki == pytest.approx(15.0)

    def test_mpki_zero_instructions(self):
        p = KernelProfile("k", 0, 0, 0)
        assert p.mpki == 0.0

    def test_bytes_per_instruction(self):
        p = KernelProfile("k", 1000, 10, 10, dram_bytes=500)
        assert p.bytes_per_instruction == pytest.approx(0.5)


class TestStreamingConstructor:
    def test_traffic_equals_bytes(self):
        p = KernelProfile.streaming("k", 1000, 2000, ops_per_byte=1.0)
        assert p.dram_bytes == 3000
        assert p.working_set_bytes == 3000

    def test_every_line_misses(self):
        p = KernelProfile.streaming("k", 6400, 0, ops_per_byte=0.0)
        assert p.llc_misses == pytest.approx(100)
        assert p.l1_misses == pytest.approx(100)

    def test_streaming_is_memory_intensive(self):
        """Streaming kernels must pass the paper's MPKI > 10 criterion."""
        p = KernelProfile.streaming("k", 2**20, 2**20, ops_per_byte=0.3)
        assert p.mpki > 10

    @given(bytes_read=sizes, bytes_written=sizes)
    def test_instructions_scale_with_bytes(self, bytes_read, bytes_written):
        p = KernelProfile.streaming("k", bytes_read, bytes_written, ops_per_byte=0.5)
        total = bytes_read + bytes_written
        assert p.instructions == pytest.approx(total * (0.125 + 0.5 + 0.5))


class TestCacheResidentConstructor:
    def test_dram_traffic_is_compulsory_only(self):
        p = KernelProfile.cache_resident("k", bytes_touched=64_000, reuse_factor=8,
                                         ops_per_byte=1.0)
        assert p.dram_bytes == 64_000
        assert p.llc_misses == pytest.approx(1000)

    def test_reuse_raises_instructions_not_traffic(self):
        lo = KernelProfile.cache_resident("k", 64_000, reuse_factor=1, ops_per_byte=1.0)
        hi = KernelProfile.cache_resident("k", 64_000, reuse_factor=8, ops_per_byte=1.0)
        assert hi.instructions > lo.instructions
        assert hi.dram_bytes == lo.dram_bytes

    def test_low_mpki(self):
        p = KernelProfile.cache_resident("k", 2**20, reuse_factor=8, ops_per_byte=2.0)
        assert p.mpki < 10


class TestScatteredConstructor:
    def test_whole_lines_fetched(self):
        p = KernelProfile.scattered("k", touches=1000, bytes_per_touch=16,
                                    ops_per_byte=1.0)
        # 16 B touches still fetch whole 64 B lines plus straddle overhead.
        assert p.dram_bytes > 1000 * 16

    def test_locality_reduces_traffic(self):
        none = KernelProfile.scattered("k", 1000, 64, 1.0, locality_fraction=0.0)
        half = KernelProfile.scattered("k", 1000, 64, 1.0, locality_fraction=0.5)
        assert half.dram_bytes < none.dram_bytes


class TestCombinators:
    def test_scaled_multiplies_counts(self):
        p = KernelProfile.streaming("k", 1000, 1000, ops_per_byte=1.0)
        s = p.scaled(3.0)
        assert s.instructions == pytest.approx(3 * p.instructions)
        assert s.dram_bytes == pytest.approx(3 * p.dram_bytes)
        assert s.mpki == pytest.approx(p.mpki)

    def test_merged_adds_counts(self):
        a = KernelProfile.streaming("a", 1000, 0, ops_per_byte=1.0)
        b = KernelProfile.streaming("b", 0, 2000, ops_per_byte=0.5)
        m = a.merged(b)
        assert m.instructions == pytest.approx(a.instructions + b.instructions)
        assert m.dram_bytes == pytest.approx(a.dram_bytes + b.dram_bytes)
        assert m.name == "a+b"

    def test_merged_simd_fraction_is_op_weighted(self):
        a = KernelProfile("a", 100, 10, 100, simd_fraction=1.0)
        b = KernelProfile("b", 100, 10, 100, simd_fraction=0.0)
        assert a.merged(b).simd_fraction == pytest.approx(0.5)

    @given(factor=st.floats(min_value=0.1, max_value=100, allow_nan=False))
    def test_scaling_preserves_intensity(self, factor):
        p = KernelProfile.streaming("k", 10_000, 10_000, ops_per_byte=0.7)
        s = p.scaled(factor)
        assert s.bytes_per_instruction == pytest.approx(p.bytes_per_instruction)

    def test_merge_is_commutative_in_totals(self):
        a = KernelProfile.streaming("a", 1000, 500, ops_per_byte=1.0)
        b = KernelProfile.cache_resident("b", 3000, 4, 2.0)
        ab, ba = a.merged(b), b.merged(a)
        assert ab.instructions == pytest.approx(ba.instructions)
        assert ab.dram_bytes == pytest.approx(ba.dram_bytes)
        assert ab.simd_fraction == pytest.approx(ba.simd_fraction)
