"""Unit + property tests for memory traces and the recorder."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import AddressSpace, MemoryTrace, TraceRecorder


class TestMemoryTrace:
    def test_length_and_counts(self):
        t = MemoryTrace(
            addresses=np.array([0, 8, 16], dtype=np.uint64),
            is_write=np.array([False, True, False]),
        )
        assert len(t) == 3
        assert t.num_reads == 2
        assert t.num_writes == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryTrace(addresses=np.array([1, 2]), is_write=np.array([True]))

    def test_unique_lines(self):
        t = MemoryTrace(
            addresses=np.array([0, 8, 63, 64, 128], dtype=np.uint64),
            is_write=np.zeros(5, dtype=bool),
        )
        assert t.unique_lines() == 3
        assert t.footprint_bytes() == 192

    def test_concatenated(self):
        a = MemoryTrace(np.array([0], dtype=np.uint64), np.array([False]))
        b = MemoryTrace(np.array([64], dtype=np.uint64), np.array([True]))
        c = a.concatenated(b)
        assert len(c) == 2
        assert c.num_writes == 1


class TestTraceRecorder:
    def test_read_range_expands_by_granularity(self):
        r = TraceRecorder(granularity=8)
        r.read(0, 64)
        t = r.trace()
        assert len(t) == 8
        assert t.num_reads == 8

    def test_partial_chunk_rounds_up(self):
        r = TraceRecorder(granularity=8)
        r.write(0, 12)
        assert len(r.trace()) == 2

    def test_zero_size_ignored(self):
        r = TraceRecorder()
        r.read(0, 0)
        assert len(r.trace()) == 0

    def test_negative_size_rejected(self):
        r = TraceRecorder()
        with pytest.raises(ValueError):
            r.read(0, -1)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            TraceRecorder(granularity=0)

    def test_scattered_indices(self):
        r = TraceRecorder()
        r.read_indices(1000, np.array([0, 10, 20]), element_size=4)
        t = r.trace()
        assert list(t.addresses) == [1000, 1040, 1080]

    def test_order_preserved(self):
        r = TraceRecorder(granularity=8)
        r.read(0, 8)
        r.write(64, 8)
        r.read(128, 8)
        t = r.trace()
        assert list(t.addresses) == [0, 64, 128]
        assert list(t.is_write) == [False, True, False]

    def test_empty_recorder(self):
        t = TraceRecorder().trace()
        assert len(t) == 0

    @given(size=st.integers(min_value=1, max_value=4096),
           gran=st.integers(min_value=1, max_value=64))
    def test_access_count_formula(self, size, gran):
        r = TraceRecorder(granularity=gran)
        r.read(0, size)
        assert len(r.trace()) == (size + gran - 1) // gran


class TestAddressSpace:
    def test_allocations_disjoint(self):
        space = AddressSpace()
        a = space.alloc(100)
        b = space.alloc(100)
        assert b >= a + 100

    def test_alignment(self):
        space = AddressSpace(alignment=4096)
        a = space.alloc(1)
        b = space.alloc(1)
        assert (b - a) % 4096 == 0
