"""Unit tests for the CPU timing/energy model."""

import pytest

from repro.sim.profile import KernelProfile

MB = 1024 * 1024


def compute_bound_profile():
    """Many instructions, no memory traffic."""
    return KernelProfile("compute", instructions=1e9, mem_instructions=1e8,
                         alu_ops=8e8, llc_misses=0, dram_bytes=0)


def memory_bound_profile():
    """Streaming over 64 MB with almost no compute."""
    return KernelProfile.streaming("stream", 32 * MB, 32 * MB, ops_per_byte=0.01,
                                   instruction_overhead=0.01)


class TestRoofline:
    def test_compute_bound_time(self, cpu_model):
        p = compute_bound_profile()
        e = cpu_model.run(p)
        soc = cpu_model.system.soc
        expected = p.instructions / (soc.sustained_ipc * soc.frequency_hz)
        assert e.time_s == pytest.approx(expected)

    def test_compute_bound_has_no_stalls(self, cpu_model):
        e = cpu_model.run(compute_bound_profile())
        assert e.energy.cpu_stall == 0.0

    def test_memory_bound_time_exceeds_compute_time(self, cpu_model):
        p = memory_bound_profile()
        e = cpu_model.run(p)
        soc = cpu_model.system.soc
        compute = p.instructions / (soc.sustained_ipc * soc.frequency_hz)
        assert e.time_s > compute

    def test_memory_bound_kernel_stalls(self, cpu_model):
        """The paper: the CPU spends most of its time stalling on the PIM
        targets (Section 6.2.1)."""
        e = cpu_model.run(memory_bound_profile())
        assert e.energy.cpu_stall > 0.0

    def test_memory_bound_is_movement_dominated(self, cpu_model):
        e = cpu_model.run(memory_bound_profile())
        assert e.energy.data_movement_fraction > 0.8


class TestMultiCore:
    def test_compute_scales_with_cores(self, cpu_model):
        p = compute_bound_profile()
        one = cpu_model.run(p, cores=1)
        four = cpu_model.run(p, cores=4)
        assert four.time_s == pytest.approx(one.time_s / 4)

    def test_memory_bound_floor_is_channel_bandwidth(self, cpu_model):
        """All cores share the one off-chip channel: no core count can
        beat the channel's sustained bandwidth."""
        p = memory_bound_profile()
        four = cpu_model.run(p, cores=4)
        floor = p.dram_bytes / cpu_model.dram.timings.sustained_bandwidth
        assert four.time_s >= floor * 0.999

    def test_cores_clamped(self, cpu_model):
        p = compute_bound_profile()
        assert cpu_model.run(p, cores=100).time_s == pytest.approx(
            cpu_model.run(p, cores=4).time_s
        )


class TestExecution:
    def test_machine_label(self, cpu_model):
        assert cpu_model.run(compute_bound_profile()).machine == "CPU-Only"

    def test_speedup_and_reduction_helpers(self, cpu_model):
        p = memory_bound_profile()
        a = cpu_model.run(p)
        b = cpu_model.run(p.scaled(2.0))
        assert a.speedup_over(b) == pytest.approx(2.0, rel=0.01)
        assert b.energy_reduction_vs(a) == pytest.approx(-1.0, rel=0.05)

    def test_energy_scales_linearly_with_work(self, cpu_model):
        p = memory_bound_profile()
        one = cpu_model.run(p)
        two = cpu_model.run(p.scaled(2.0))
        assert two.energy_j == pytest.approx(2 * one.energy_j, rel=0.01)
