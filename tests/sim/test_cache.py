"""Unit tests for the set-associative cache simulator."""

import numpy as np
import pytest

from repro.config import CacheConfig, CACHE_LINE_BYTES
from repro.sim.cache import Cache, CacheHierarchy, replay_trace
from repro.sim.trace import MemoryTrace, TraceRecorder


def tiny_cache(size=1024, assoc=2):
    return Cache(CacheConfig(size_bytes=size, associativity=assoc), "test")


def make_trace(addresses, writes=None):
    addresses = np.asarray(addresses, dtype=np.uint64)
    if writes is None:
        writes = np.zeros(len(addresses), dtype=bool)
    return MemoryTrace(addresses=addresses, is_write=np.asarray(writes, dtype=bool))


class TestSingleCache:
    def test_first_access_misses(self):
        c = tiny_cache()
        hit, victim = c.access(0, False)
        assert not hit and victim is None

    def test_second_access_hits(self):
        c = tiny_cache()
        c.access(0, False)
        hit, _ = c.access(0, False)
        assert hit

    def test_lru_eviction_order(self):
        c = tiny_cache(size=128, assoc=2)  # 1 set of 2 lines
        assert c.config.num_sets == 1
        c.access(0, False)
        c.access(1, False)
        c.access(0, False)  # touch line 0: line 1 is now LRU
        hit, victim = c.access(2, False)
        assert not hit
        assert victim[0] == 1  # line 1 evicted

    def test_dirty_eviction_reports_writeback(self):
        c = tiny_cache(size=64, assoc=1)  # a single line
        c.access(0, True)
        hit, victim = c.access(1, False)  # evicts dirty line 0
        assert victim == (0, True)
        assert c.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        c = tiny_cache(size=64, assoc=1)
        c.access(0, False)
        _, victim = c.access(1, False)
        assert victim == (0, False)
        assert c.stats.writebacks == 0

    def test_write_marks_dirty_on_hit(self):
        c = tiny_cache(size=64, assoc=1)
        c.access(0, False)
        c.access(0, True)
        _, victim = c.access(1, False)
        assert victim == (0, True)

    def test_set_mapping_no_conflict(self):
        c = tiny_cache(size=1024, assoc=2)  # 8 sets
        for line in range(8):  # one line per set
            c.access(line, False)
        assert c.stats.misses == 8
        for line in range(8):
            hit, _ = c.access(line, False)
            assert hit

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3)

    def test_reset(self):
        c = tiny_cache()
        c.access(0, True)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.contains(0)

    def test_hit_rate(self):
        c = tiny_cache()
        c.access(0, False)
        c.access(0, False)
        assert c.stats.hit_rate == pytest.approx(0.5)
        assert c.stats.miss_rate == pytest.approx(0.5)


class TestHierarchy:
    def test_streaming_misses_every_line(self):
        """A one-pass stream over a large buffer misses once per line at
        both levels: the assumption behind KernelProfile.streaming."""
        size = 8 * 1024 * 1024  # 4x the LLC
        rec = TraceRecorder(granularity=64)
        rec.read(0, size)
        stats = CacheHierarchy().replay(rec.trace())
        lines = size // CACHE_LINE_BYTES
        assert stats.l1.misses == lines
        assert stats.dram_line_reads == lines
        assert stats.dram_line_writes == 0

    def test_small_working_set_stays_cached(self):
        """Repeated passes over an L1-resident buffer: compulsory misses
        only."""
        size = 16 * 1024  # fits in 64 kB L1
        rec = TraceRecorder(granularity=64)
        for _ in range(10):
            rec.read(0, size)
        stats = CacheHierarchy().replay(rec.trace())
        assert stats.dram_line_reads == size // CACHE_LINE_BYTES
        assert stats.l1.hit_rate > 0.85

    def test_llc_resident_working_set(self):
        """A buffer bigger than L1 but smaller than the LLC: DRAM sees it
        once, later passes hit in the LLC."""
        size = 512 * 1024
        rec = TraceRecorder(granularity=64)
        for _ in range(4):
            rec.read(0, size)
        stats = CacheHierarchy().replay(rec.trace())
        assert stats.dram_line_reads == size // CACHE_LINE_BYTES

    def test_writes_produce_writebacks_on_flush(self):
        size = 64 * 1024
        rec = TraceRecorder(granularity=64)
        rec.write(0, size)
        stats = CacheHierarchy().replay(rec.trace(), flush=True)
        assert stats.dram_line_writes == size // CACHE_LINE_BYTES

    def test_flush_counts_per_level_writebacks(self):
        """Regression: draining dirty lines at flush must increment each
        level's ``writebacks`` so per-level stats match DRAM writes."""
        size = 4096  # L1-resident: no writebacks until the flush
        lines = size // CACHE_LINE_BYTES
        rec = TraceRecorder(granularity=64)
        rec.write(0, size)
        hierarchy = CacheHierarchy()
        stats = hierarchy.replay(rec.trace(), flush=True)
        assert stats.l1.writebacks == lines
        assert stats.llc.writebacks == lines
        assert stats.dram_line_writes == lines

    def test_flush_skips_clean_lines(self):
        rec = TraceRecorder(granularity=64)
        rec.read(0, 4096)
        stats = CacheHierarchy().replay(rec.trace(), flush=True)
        assert stats.l1.writebacks == 0
        assert stats.llc.writebacks == 0
        assert stats.dram_line_writes == 0

    def test_no_flush_keeps_dirty_lines_in_cache(self):
        rec = TraceRecorder(granularity=64)
        rec.write(0, 4096)
        stats = CacheHierarchy().replay(rec.trace(), flush=False)
        assert stats.dram_line_writes == 0

    def test_mpki_uses_instruction_hint(self):
        rec = TraceRecorder(granularity=64)
        rec.read(0, 64 * 1000)
        stats = CacheHierarchy().replay(rec.trace(), instructions_hint=100_000)
        assert stats.mpki() == pytest.approx(10.0)

    def test_replay_trace_convenience(self):
        t = make_trace([0, 64, 128])
        stats = replay_trace(t)
        assert stats.l1.accesses == 3

    def test_dram_bytes(self):
        rec = TraceRecorder(granularity=64)
        rec.read(0, 6400)
        stats = CacheHierarchy().replay(rec.trace())
        assert stats.dram_bytes == 6400
