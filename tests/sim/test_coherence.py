"""Unit tests for the CPU<->PIM coherence cost model."""

import pytest

from repro.sim.coherence import CoherenceModel

MB = 1024 * 1024


class TestOffloadOverhead:
    def test_overhead_positive(self):
        o = CoherenceModel().offload_overhead(1 * MB, 16384, invocations=1)
        assert o.time_s > 0 and o.energy_j > 0

    def test_invocations_validated(self):
        with pytest.raises(ValueError):
            CoherenceModel().offload_overhead(1 * MB, 100, invocations=0)

    def test_dirty_fraction_validated(self):
        with pytest.raises(ValueError):
            CoherenceModel(dirty_fraction=1.5)

    def test_per_invocation_flush_uses_slice_not_total(self):
        """Many small offloads over a big input must not each flush the
        whole input (regression: a 64 MB input in 4 kB pages)."""
        model = CoherenceModel()
        many_small = model.offload_overhead(64 * MB, 1e6, invocations=16384)
        # Each 4 kB page is flushed at most once: the total can never
        # exceed the input's line count times the dirty fraction.
        input_lines = 64 * MB / 64
        assert many_small.flushed_lines <= input_lines * model.dirty_fraction * 1.01

    def test_flush_bounded_by_llc(self):
        model = CoherenceModel(dirty_fraction=1.0)
        huge = model.offload_overhead(1024 * MB, 100, invocations=1)
        llc_lines = model.system.soc.l2.size_bytes / 64
        assert huge.flushed_lines <= llc_lines

    def test_launch_latency_scales_with_invocations(self):
        model = CoherenceModel(dirty_fraction=0.0)
        one = model.offload_overhead(0, 0, invocations=1)
        ten = model.offload_overhead(0, 0, invocations=10)
        assert ten.time_s == pytest.approx(10 * one.time_s)

    def test_directory_energy_scales_with_lines(self):
        model = CoherenceModel(dirty_fraction=0.0)
        small = model.offload_overhead(0, 1000, invocations=1)
        large = model.offload_overhead(0, 100_000, invocations=1)
        assert large.energy_j == pytest.approx(100 * small.energy_j)

    def test_overhead_small_vs_kernel(self, engine):
        """The paper's argument (Section 8.2): fine-grained coherence
        costs single-digit percent of the offloaded kernels."""
        from repro.workloads.chrome.targets import texture_tiling_target

        target = texture_tiling_target()
        plain = engine.pim_core_model.run(target.profile)
        with_overhead = engine.run_pim_core(target)
        assert with_overhead.energy_j < plain.energy_j * 1.15
        assert with_overhead.time_s < plain.time_s * 1.15
