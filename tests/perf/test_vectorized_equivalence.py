"""Differential tests: every NumPy fast path against its scalar oracle.

Each vectorized kernel (``fast=True``, the default everywhere) must be
*bit-identical* to its per-pixel / per-byte / per-access scalar oracle
(``fast=False``): same pixels, same compressed bytes, same (base, count,
is_write) range records, same stats dataclasses, same
:class:`TimingResult` floats.  Hypothesis drives randomized inputs under
the central ``repro`` profile (pinned examples; ``soak`` for fuzzing —
see ``tests/conftest.py``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.obs import recording
from repro.sim.timing import TimingParameters, TimingSimulator
from repro.sim.trace import MemoryTrace, TraceRecorder
from repro.workloads.chrome import lzo
from repro.workloads.chrome.texture import compositing_trace, linear_to_tiled_traced
from repro.workloads.vp9.deblock import DeblockStats, deblock_frame
from repro.workloads.vp9.frame import MACROBLOCK, Frame
from repro.workloads.vp9.mc import MotionVector, interpolate_block, motion_compensate_block
from repro.workloads.vp9.me import (
    SearchStats,
    diamond_search,
    full_search,
    multi_reference_search,
    sad,
    sad_scalar,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _pixels(seed: int, h: int, w: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 256, (h, w), dtype=np.uint8)


class TestMotionCompensation:
    @settings(max_examples=60)
    @given(
        seed=seeds,
        frac_y=st.integers(0, 7),
        frac_x=st.integers(0, 7),
        y0=st.integers(-12, 40),
        x0=st.integers(-12, 40),
        h=st.sampled_from([4, 8, 16, 32]),
        w=st.sampled_from([4, 8, 16, 32]),
    )
    def test_interpolate_block(self, seed, frac_y, frac_x, y0, x0, h, w):
        ref = _pixels(seed, 48, 48)
        fast = interpolate_block(ref, y0, x0, frac_y, frac_x, h, w, fast=True)
        scalar = interpolate_block(ref, y0, x0, frac_y, frac_x, h, w, fast=False)
        assert fast.dtype == scalar.dtype == np.uint8
        assert np.array_equal(fast, scalar)

    @settings(max_examples=20)
    @given(seed=seeds, dx=st.integers(-40, 40), dy=st.integers(-40, 40))
    def test_motion_compensate_block(self, seed, dx, dy):
        ref = _pixels(seed, 64, 64)
        mv = MotionVector(dx=dx, dy=dy)
        fast = motion_compensate_block(ref, 1, 1, mv, fast=True)
        scalar = motion_compensate_block(ref, 1, 1, mv, fast=False)
        assert np.array_equal(fast, scalar)


class TestDeblock:
    @settings(max_examples=30)
    @given(
        seed=seeds,
        h=st.sampled_from([16, 32, 48]),
        w=st.sampled_from([16, 32, 48]),
        threshold=st.integers(0, 48),
        smooth=st.booleans(),
    )
    def test_deblock_frame(self, seed, h, w, threshold, smooth):
        pixels = _pixels(seed, h, w)
        if smooth:
            # Low-gradient content so the filter condition actually fires.
            pixels = (pixels // 16 + 100).astype(np.uint8)
        frame = Frame(pixels=pixels)
        fast_stats, scalar_stats = DeblockStats(), DeblockStats()
        fast = deblock_frame(frame, threshold, fast_stats, fast=True)
        scalar = deblock_frame(frame, threshold, scalar_stats, fast=False)
        assert np.array_equal(fast.pixels, scalar.pixels)
        assert fast_stats == scalar_stats


class TestMotionEstimation:
    @settings(max_examples=30)
    @given(seed=seeds)
    def test_sad(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        b = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        assert sad(a, b) == sad_scalar(a, b)

    @settings(max_examples=25)
    @given(
        seed=seeds,
        mb_row=st.integers(0, 2),
        mb_col=st.integers(0, 2),
        search_range=st.sampled_from([4, 8, 16]),
        shift=st.integers(-3, 3),
    )
    def test_diamond_search(self, seed, mb_row, mb_col, search_range, shift):
        rng = np.random.default_rng(seed)
        cur_frame = rng.integers(0, 256, (48, 48), dtype=np.uint8)
        # The reference is a shifted copy plus noise, so the search has a
        # meaningful optimum to walk towards.
        ref = np.roll(cur_frame, (shift, -shift), axis=(0, 1))
        ref = np.clip(
            ref.astype(np.int32) + rng.integers(-4, 5, ref.shape), 0, 255
        ).astype(np.uint8)
        current = cur_frame[
            mb_row * MACROBLOCK : (mb_row + 1) * MACROBLOCK,
            mb_col * MACROBLOCK : (mb_col + 1) * MACROBLOCK,
        ]
        fast_stats, scalar_stats = SearchStats(), SearchStats()
        fast = diamond_search(
            current, ref, mb_row, mb_col, search_range, fast_stats, fast=True
        )
        scalar = diamond_search(
            current, ref, mb_row, mb_col, search_range, scalar_stats, fast=False
        )
        assert fast == scalar
        assert fast_stats == scalar_stats

    @settings(max_examples=15)
    @given(seed=seeds, search_range=st.sampled_from([2, 4, 8]))
    def test_full_search(self, seed, search_range):
        rng = np.random.default_rng(seed)
        ref = rng.integers(0, 256, (48, 48), dtype=np.uint8)
        current = rng.integers(0, 256, (MACROBLOCK, MACROBLOCK), dtype=np.uint8)
        fast_stats, scalar_stats = SearchStats(), SearchStats()
        fast = full_search(current, ref, 1, 1, search_range, fast_stats, fast=True)
        scalar = full_search(
            current, ref, 1, 1, search_range, scalar_stats, fast=False
        )
        assert fast == scalar
        assert fast_stats == scalar_stats

    @settings(max_examples=10)
    @given(seed=seeds)
    def test_multi_reference_search(self, seed):
        rng = np.random.default_rng(seed)
        refs = [rng.integers(0, 256, (32, 32), dtype=np.uint8) for _ in range(3)]
        current = rng.integers(0, 256, (MACROBLOCK, MACROBLOCK), dtype=np.uint8)
        fast = multi_reference_search(current, refs, 0, 0, 8, fast=True)
        scalar = multi_reference_search(current, refs, 0, 0, 8, fast=False)
        assert fast == scalar


class TestTextureTracing:
    @settings(max_examples=20)
    @given(seed=seeds, w=st.integers(1, 130), h=st.integers(1, 90))
    def test_linear_to_tiled_traced(self, seed, w, h):
        bitmap = np.random.default_rng(seed).integers(
            0, 256, (h, w, 4), dtype=np.uint8
        )
        rec_fast, rec_scalar = TraceRecorder(), TraceRecorder()
        fast = linear_to_tiled_traced(bitmap, rec_fast, fast=True)
        scalar = linear_to_tiled_traced(bitmap, rec_scalar, fast=False)
        assert np.array_equal(fast.tiles, scalar.tiles)
        # Identical compact range records, hence identical traces.
        assert rec_fast.range_records() == rec_scalar.range_records()
        tf, ts = rec_fast.trace(), rec_scalar.trace()
        assert np.array_equal(tf.addresses, ts.addresses)
        assert np.array_equal(tf.is_write, ts.is_write)

    @settings(max_examples=20)
    @given(w=st.integers(4, 130), h=st.integers(1, 90), tiled=st.booleans())
    def test_compositing_trace(self, w, h, tiled):
        fast = compositing_trace(w, h, tiled, fast=True)
        scalar = compositing_trace(w, h, tiled, fast=False)
        assert np.array_equal(fast.addresses, scalar.addresses)
        assert np.array_equal(fast.is_write, scalar.is_write)


def _lzo_corpus(rng: np.random.Generator, n: int, kind: int) -> bytes:
    if kind == 0:  # incompressible
        return rng.integers(0, 256, n, dtype=np.uint8).tobytes()
    if kind == 1:  # single-byte run: overlapping distance-1 matches
        return bytes([int(rng.integers(0, 256))]) * n
    # repeated phrases over a tiny alphabet: dense matching
    base = rng.integers(0, 4, max(1, n // 8), dtype=np.uint8).tobytes()
    out = bytearray()
    while len(out) < n:
        out += base[: int(rng.integers(1, len(base) + 1))]
    return bytes(out[:n])


class TestLzo:
    @settings(max_examples=40)
    @given(seed=seeds, n=st.integers(0, 4096), kind=st.integers(0, 2))
    def test_compress_decompress(self, seed, n, kind):
        data = _lzo_corpus(np.random.default_rng(seed), n, kind)
        comp_fast, cstats_fast = lzo.compress(data, fast=True)
        comp_scalar, cstats_scalar = lzo.compress(data, fast=False)
        assert comp_fast == comp_scalar
        assert cstats_fast == cstats_scalar
        out_fast, dstats_fast = lzo.decompress(comp_fast, fast=True)
        out_scalar, dstats_scalar = lzo.decompress(comp_fast, fast=False)
        assert out_fast == out_scalar == data
        assert dstats_fast == dstats_scalar

    @settings(max_examples=20)
    @given(data=st.binary(max_size=2048))
    def test_arbitrary_bytes_roundtrip(self, data):
        comp_fast, stats_fast = lzo.compress(data, fast=True)
        comp_scalar, stats_scalar = lzo.compress(data, fast=False)
        assert comp_fast == comp_scalar
        assert stats_fast == stats_scalar
        restored, _ = lzo.decompress(comp_fast)
        assert restored == data


class TestTimingReplay:
    @settings(max_examples=25)
    @given(
        seed=seeds,
        n=st.integers(0, 3000),
        footprint_log2=st.integers(10, 26),
        write_fraction=st.floats(0.0, 1.0),
        mshrs=st.sampled_from([1, 6, 10_000]),
    )
    def test_replay_fast_bit_identical(
        self, seed, n, footprint_log2, write_fraction, mshrs
    ):
        rng = np.random.default_rng(seed)
        trace = MemoryTrace(
            addresses=rng.integers(0, 1 << footprint_log2, n).astype(np.uint64),
            is_write=rng.random(n) < write_fraction,
        )
        params = TimingParameters(mshrs=mshrs)
        scalar = TimingSimulator(params=params).replay(trace)
        fast = TimingSimulator(params=params).replay_fast(trace)
        # Dataclass equality: exact float cycles, not approximate.
        assert scalar == fast

    def test_streaming_trace(self):
        rec = TraceRecorder(granularity=8)
        rec.read(0, 256 * 1024)
        trace = rec.trace()
        scalar = TimingSimulator().replay(trace, instructions_per_access=0.5)
        fast = TimingSimulator().replay_fast(trace, instructions_per_access=0.5)
        assert scalar == fast


class TestPathCounters:
    def test_kernels_publish_path_counters(self):
        ref = _pixels(3, 48, 48)
        frame = Frame(pixels=_pixels(4, 32, 32))
        with recording() as rec:
            interpolate_block(ref, 0, 0, 3, 3, 16, 16, fast=True)
            interpolate_block(ref, 0, 0, 3, 3, 16, 16, fast=False)
            deblock_frame(frame, fast=True)
            diamond_search(ref[:16, :16], ref, 0, 0, 8, fast=True)
            lzo.compress(b"abcd" * 64, fast=True)
            compositing_trace(32, 32, tiled=True, fast=True)
            TimingSimulator().replay_fast(
                MemoryTrace(
                    addresses=np.arange(64, dtype=np.uint64) * np.uint64(64),
                    is_write=np.zeros(64, dtype=bool),
                )
            )
        counters = rec.counters.as_dict()
        assert counters["kernel.mc.fast_path"] == 1
        assert counters["kernel.mc.scalar_path"] == 1
        assert counters["kernel.deblock.fast_path"] == 1
        assert counters["kernel.me.fast_path"] == 1
        assert counters["kernel.lzo.fast_path"] == 1
        assert counters["kernel.compositing.fast_path"] == 1
        assert counters["sim.timing.fast_path"] == 1
        assert counters["sim.timing.dram_misses"] == 64
