"""Schema tests: every figure's rows carry the columns the paper plots."""

import pytest

from repro.analysis import (
    fig01_scrolling_energy,
    fig04_zram_traffic,
    fig06_tf_energy,
    fig11_sw_decoder_components,
    fig12_hw_decoder_traffic,
    fig16_hw_encoder_traffic,
    fig18_browser_pim,
    fig20_video_pim,
    fig21_hw_codec_pim,
)


class TestRowSchemas:
    def test_fig01_six_pages_shares_sum_to_one(self):
        rows = fig01_scrolling_energy().rows
        assert len(rows) == 6
        for row in rows:
            total = row["texture_tiling"] + row["color_blitting"] + row["other"]
            assert total == pytest.approx(1.0)

    def test_fig04_timeline_buckets(self):
        rows = fig04_zram_traffic().rows
        assert len(rows) >= 10
        assert rows[0]["t_start_s"] == 0
        for row in rows:
            assert row["avg_out_MBps"] >= 0
            assert row["avg_in_MBps"] >= 0

    def test_fig06_four_networks(self):
        rows = fig06_tf_energy().rows
        names = [r["network"] for r in rows]
        assert names == [
            "ResNet-V2-152", "VGG-19", "Residual-GRU", "Inception-ResNet",
        ]
        for row in rows:
            total = (
                row["packing"] + row["quantization"]
                + row["conv2d_matmul"] + row["other"]
            )
            assert total == pytest.approx(1.0)

    def test_fig11_component_matrix_sums_to_one(self):
        rows = fig11_sw_decoder_components().rows
        components = [r["component"] for r in rows]
        assert components == ["cpu", "l1", "llc", "interconnect", "memctrl", "dram"]
        total = sum(
            v for row in rows for k, v in row.items() if k != "component"
        )
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("figure_fn", [fig12_hw_decoder_traffic,
                                           fig16_hw_encoder_traffic])
    def test_traffic_rows_cover_four_configs(self, figure_fn):
        rows = figure_fn().rows
        configs = {(r["resolution"], r["compression"]) for r in rows}
        assert configs == {
            ("HD", False), ("HD", True), ("4K", False), ("4K", True),
        }
        for row in rows:
            component_sum = sum(
                v for k, v in row.items()
                if k not in ("resolution", "compression", "total_MB")
            )
            assert component_sum == pytest.approx(row["total_MB"], rel=1e-6)

    @pytest.mark.parametrize(
        "figure_fn,expected",
        [
            (fig18_browser_pim,
             ["texture_tiling", "color_blitting", "compression", "decompression"]),
            (fig20_video_pim,
             ["sub_pixel_interpolation", "deblocking_filter", "motion_estimation"]),
        ],
    )
    def test_pim_rows_in_figure_order(self, figure_fn, expected):
        rows = figure_fn().rows
        assert [r["target"] for r in rows] == expected
        for row in rows:
            assert row["energy_cpu"] == 1.0
            assert 0 < row["energy_pim_acc"] <= 1.0

    def test_fig21_twelve_bars(self):
        rows = fig21_hw_codec_pim().rows
        assert len(rows) == 12  # 2 codecs x 2 compression x 3 placements
        for row in rows:
            parts = (
                row["dram_mJ"] + row["memctrl_mJ"]
                + row["interconnect_mJ"] + row["computation_mJ"]
            )
            assert parts == pytest.approx(row["total_mJ"], rel=1e-9)
