"""Unit tests for the end-to-end consumer scenarios."""

import pytest

from repro.analysis.scenarios import (
    Scenario,
    evaluate_all,
    evaluate_scenario,
    standard_scenarios,
)
from repro.core.workload import WorkloadFunction
from repro.sim.profile import KernelProfile

MB = 1024 * 1024


class TestScenario:
    def test_four_standard_scenarios(self):
        names = [s.name for s in standard_scenarios()]
        assert len(names) == 4
        assert any("movie" in n for n in names)

    def test_functions_scaled_by_weight(self):
        profile = KernelProfile.streaming("k", MB, MB, ops_per_byte=0.3)
        part = (3.0, [WorkloadFunction("k", profile,
                                       accelerator_key="texture_tiling")])
        scenario = Scenario(name="s", parts=(part,))
        fn = scenario.functions()[0]
        assert fn.profile.dram_bytes == pytest.approx(3 * profile.dram_bytes)
        assert fn.name == "p0_k"

    def test_part_names_disjoint(self):
        profile = KernelProfile.streaming("k", MB, MB, ops_per_byte=0.3)
        parts = tuple(
            (1.0, [WorkloadFunction("k", profile)]) for _ in range(3)
        )
        names = [f.name for f in Scenario("s", parts).functions()]
        assert len(set(names)) == 3


class TestEvaluation:
    @pytest.fixture(scope="class")
    def results(self):
        return evaluate_all()

    def test_every_scenario_benefits(self, results):
        for r in results:
            assert r.energy_reduction > 0.05, r.scenario
            assert r.speedup > 1.0, r.scenario

    def test_video_scenarios_benefit_most(self, results):
        by_name = {r.scenario: r for r in results}
        movie = by_name["movie night (90 min HD)"]
        photos = by_name["photo organizing (200 images)"]
        assert movie.energy_reduction > photos.energy_reduction

    def test_battery_minutes_saved_positive(self, results):
        for r in results:
            assert r.battery_minutes_saved() > 0, r.scenario

    def test_energy_magnitudes_plausible(self, results):
        by_name = {r.scenario: r for r in results}
        movie = by_name["movie night (90 min HD)"]
        # 90 minutes of HD software decode: order of 10-100 J of SoC+mem.
        assert 50.0 <= movie.cpu_energy_j <= 2000.0

    def test_single_scenario_evaluation(self):
        scenario = standard_scenarios()[0]
        r = evaluate_scenario(scenario)
        assert r.scenario == scenario.name
