"""Robustness: the paper's conclusions hold across the parameter space."""

import pytest

from repro.analysis.sensitivity import (
    breakeven_internal_ratio,
    evaluate_point,
    sweep,
)


class TestValidation:
    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            evaluate_point("magic_smoke", 1.0)

    def test_non_positive_scale(self):
        with pytest.raises(ValueError):
            evaluate_point("dram_energy", 0.0)


class TestDramEnergySweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep("dram_energy", scales=(0.5, 1.0, 2.0))

    def test_pim_saves_energy_everywhere(self, points):
        for p in points:
            assert p.pim_always_saves_energy, p.scale

    def test_savings_grow_with_dram_cost(self, points):
        """The more off-chip access costs, the more PIM saves."""
        reductions = [p.mean_pim_acc_energy_reduction for p in points]
        assert reductions == sorted(reductions)

    def test_acc_beats_core_everywhere(self, points):
        assert all(p.acc_beats_core for p in points)


class TestInternalRatioSweep:
    def test_savings_shrink_as_internal_gets_expensive(self):
        points = sweep("internal_ratio", scales=(0.5, 1.0, 1.5))
        reductions = [p.mean_pim_acc_energy_reduction for p in points]
        assert reductions == sorted(reductions, reverse=True)

    def test_cheap_internal_access_boosts_savings(self):
        cheap = evaluate_point("internal_ratio", 0.25)
        calibrated = evaluate_point("internal_ratio", 1.0)
        assert cheap.mean_pim_acc_energy_reduction > (
            calibrated.mean_pim_acc_energy_reduction
        )


class TestCpuEpiSweep:
    def test_conclusions_hold_across_cpu_cost(self):
        for p in sweep("cpu_epi", scales=(0.5, 1.0, 2.0)):
            assert p.pim_always_saves_energy
            assert p.mean_pim_acc_energy_reduction > 0.3


class TestBreakeven:
    def test_breakeven_well_above_calibration(self):
        """PIM keeps saving energy even if internal DRAM access were much
        more expensive than our calibrated 0.5x-of-off-chip estimate --
        the headline conclusion does not hinge on that constant."""
        breakeven = breakeven_internal_ratio(resolution=0.5)
        assert breakeven >= 1.5
