"""Unit tests for the JSON export."""

import json
import os

import pytest

from repro.analysis.base import FigureResult
from repro.analysis.export import export_all, figure_to_dict


class TestFigureToDict:
    def test_schema(self):
        r = FigureResult(
            "Figure 9", "t", rows=[{"a": 1.5}], anchors={"x": (0.5, 0.6)},
            notes="n",
        )
        d = figure_to_dict(r)
        assert d["figure_id"] == "Figure 9"
        assert d["rows"] == [{"a": 1.5}]
        assert d["anchors"]["x"] == {"paper": 0.5, "measured": 0.6}
        assert d["notes"] == "n"

    def test_json_serializable(self):
        r = FigureResult("f", "t", rows=[{"a": 1}], anchors={"x": (1.0, 2.0)})
        json.dumps(figure_to_dict(r))


class TestExportAll:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("figures"))
        return directory, export_all(directory)

    def test_one_file_per_experiment_plus_index(self, exported):
        directory, written = exported
        assert len(written) == 17  # 16 experiments + index
        assert all(os.path.exists(p) for p in written)

    def test_index_references_all_files(self, exported):
        directory, written = exported
        with open(os.path.join(directory, "index.json")) as f:
            index = json.load(f)
        assert len(index) == 16
        for entry in index:
            assert os.path.exists(os.path.join(directory, entry["file"]))
            assert entry["num_rows"] > 0

    def test_figure18_content(self, exported):
        directory, _ = exported
        with open(os.path.join(directory, "figure_18.json")) as f:
            fig18 = json.load(f)
        targets = [row["target"] for row in fig18["rows"]]
        assert "texture_tiling" in targets
        assert fig18["anchors"]["mean PIM-Core energy reduction"]["paper"] == 0.513
