"""Unit + acceptance tests for the reproduction scorecard."""

import pytest

from repro.analysis.base import FigureResult
from repro.analysis.scorecard import AnchorScore, full_scorecard, score_figures


def figure(anchors):
    return FigureResult("Figure T", "test", rows=[{"x": 1}], anchors=anchors)


class TestScoring:
    def test_fraction_tolerance_absolute(self):
        card = score_figures([figure({"a": (0.5, 0.58), "b": (0.5, 0.65)})])
        assert card.passed == 1
        assert card.failures()[0].anchor == "b"

    def test_magnitude_tolerance_relative(self):
        card = score_figures([figure({"a": (100.0, 130.0), "b": (100.0, 150.0)})])
        assert card.passed == 1

    def test_deviation_metric(self):
        s = AnchorScore("f", "a", paper=0.5, measured=0.6, within=True)
        assert s.deviation == pytest.approx(0.1)
        s = AnchorScore("f", "a", paper=200.0, measured=100.0, within=False)
        assert s.deviation == pytest.approx(0.5)

    def test_empty(self):
        card = score_figures([])
        assert card.total == 0
        assert card.pass_rate == 0.0

    def test_render(self):
        card = score_figures([figure({"a": (0.5, 0.9)})])
        text = card.render_text()
        assert "0/1" in text
        assert "MISS" in text

    def test_worst_sorted(self):
        card = score_figures(
            [figure({"a": (0.5, 0.52), "b": (0.5, 0.8), "c": (0.5, 0.6)})]
        )
        worst = card.worst(2)
        assert worst[0].anchor == "b"


class TestFullScorecard:
    def test_reproduction_quality_bar(self):
        """The acceptance criterion for the whole repository: at least
        85% of the paper's anchor values reproduce within tolerance."""
        card = full_scorecard()
        assert card.total >= 50
        assert card.pass_rate >= 0.85, card.render_text()
