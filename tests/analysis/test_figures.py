"""Regression suite: every paper figure regenerates and its anchors stay
within tolerance of the paper's reported values.

Tolerances: fractions within +-0.10 absolute; magnitudes within +-40%
relative unless noted (our substrate is an analytical model, not the
authors' testbed -- shapes, not absolute numbers, are the target).
"""

import pytest

from repro.analysis import (
    fig01_scrolling_energy,
    fig02_docs_breakdown,
    fig04_zram_traffic,
    fig06_tf_energy,
    fig07_tf_time,
    fig10_sw_decoder_energy,
    fig11_sw_decoder_components,
    fig12_hw_decoder_traffic,
    fig15_sw_encoder_energy,
    fig16_hw_encoder_traffic,
    fig18_browser_pim,
    fig19_tf_pim,
    fig20_video_pim,
    fig21_hw_codec_pim,
    headline_summary,
    table1_configuration,
)

ALL_FIGURES = [
    table1_configuration,
    fig01_scrolling_energy,
    fig02_docs_breakdown,
    fig04_zram_traffic,
    fig06_tf_energy,
    fig07_tf_time,
    fig10_sw_decoder_energy,
    fig11_sw_decoder_components,
    fig12_hw_decoder_traffic,
    fig15_sw_encoder_energy,
    fig16_hw_encoder_traffic,
    fig18_browser_pim,
    fig19_tf_pim,
    fig20_video_pim,
    fig21_hw_codec_pim,
    headline_summary,
]


@pytest.mark.parametrize("figure_fn", ALL_FIGURES, ids=lambda f: f.__name__)
def test_figure_regenerates(figure_fn):
    result = figure_fn()
    assert result.rows, result.figure_id
    assert result.render_text()


class TestAnchors:
    def test_fig01(self):
        r = fig01_scrolling_energy()
        assert r.anchor_within("avg tiling+blitting share of scrolling energy", 0.10)

    def test_fig02(self):
        r = fig02_docs_breakdown()
        for name in r.anchors:
            assert r.anchor_within(name, 0.10), name

    def test_fig04(self):
        r = fig04_zram_traffic()
        assert r.anchor_within("total swapped out (GB)", 0.40)
        assert r.anchor_within("total swapped in (GB)", 0.40)
        assert r.anchor_within("compression+decompression energy share", 0.07)
        assert r.anchor_within("compression+decompression time share", 0.06)

    def test_fig06(self):
        r = fig06_tf_energy()
        assert r.anchor_within("avg packing+quantization energy share", 0.10)
        assert r.anchor_within("avg data-movement fraction of inference", 0.10)

    def test_fig07(self):
        assert fig07_tf_time().anchor_within(
            "avg packing+quantization time share", 0.08
        )

    def test_fig10(self):
        r = fig10_sw_decoder_energy()
        for name in r.anchors:
            assert r.anchor_within(name, 0.10), name

    def test_fig11(self):
        r = fig11_sw_decoder_components()
        assert r.anchor_within("data-movement fraction of decoder energy", 0.08)
        assert r.anchor_within("movement fraction within sub-pel interpolation", 0.10)

    def test_fig12(self):
        r = fig12_hw_decoder_traffic()
        assert r.anchor_within("HD nocomp ref-frame traffic share", 0.08)
        assert r.anchor_within("4K nocomp ref-frame traffic share", 0.08)

    def test_fig15(self):
        r = fig15_sw_encoder_energy()
        assert r.anchor_within("motion estimation share", 0.08)
        assert r.anchor_within("data-movement fraction of encoder energy", 0.08)

    def test_fig16(self):
        r = fig16_hw_encoder_traffic()
        assert r.anchor_within("HD nocomp reference-frame share", 0.08)
        assert r.anchor_within("HD current-frame share, nocomp", 0.05)

    def test_fig18(self):
        r = fig18_browser_pim()
        assert r.anchor_within("mean PIM-Core energy reduction", 0.08)
        assert r.anchor_within("mean PIM-Acc energy reduction", 0.10)
        assert r.anchor_within("mean PIM-Core speedup", 0.40)
        assert r.anchor_within("mean PIM-Acc speedup", 0.40)

    def test_fig19(self):
        r = fig19_tf_pim()
        assert r.anchor_within("mean PIM-Core energy reduction", 0.09)
        assert r.anchor_within("mean PIM-Acc energy reduction", 0.09)

    def test_fig20(self):
        r = fig20_video_pim()
        assert r.anchor_within("mean PIM-Acc energy reduction", 0.08)
        assert r.anchor_within("motion estimation PIM-Acc speedup", 0.30)

    def test_fig21_qualitative(self):
        r = fig21_hw_codec_pim()
        # Both boolean orderings must hold exactly.
        assert r.anchors["decoder PIM-Acc nocomp beats baseline comp"][1] == 1.0
        assert r.anchors["encoder PIM-Acc nocomp beats baseline comp"][1] == 1.0
        # PIM-Core overhead direction (positive = worse than baseline).
        assert r.anchors["decoder PIM-Core overhead vs baseline (w/ comp)"][1] > 0.2

    def test_headline(self):
        r = headline_summary()
        assert r.anchor_within("avg data-movement fraction of system energy", 0.08)
        assert r.anchor_within("mean PIM-Core energy reduction", 0.10)
        assert r.anchor_within("mean PIM-Acc energy reduction", 0.10)
        assert r.anchor_within("max PIM-Acc energy reduction", 0.10)
