"""Unit tests for ASCII chart rendering."""

import pytest

from repro.analysis.ascii import BAR_WIDTH, render_all_charts, render_chart
from repro.analysis.base import FigureResult


def figure(rows):
    return FigureResult("Figure A", "ascii test", rows=rows)


class TestRenderChart:
    def test_stacked_bars_with_legend(self):
        text = render_chart(
            figure([
                {"page": "Docs", "a": 0.5, "b": 0.5},
                {"page": "Mail", "a": 0.25, "b": 0.25},
            ])
        )
        lines = text.splitlines()
        assert "legend" in lines[1]
        assert "Docs" in lines[2]
        # Mail's total is half of Docs': its bar is ~half the width.
        docs_len = lines[2].split("|")[1].rstrip()
        mail_len = lines[3].split("|")[1].rstrip()
        assert len(mail_len) == pytest.approx(len(docs_len) / 2, abs=2)

    def test_full_scale_row_spans_bar_width(self):
        text = render_chart(figure([{"k": "x", "v": 1.0}]))
        bar = text.splitlines()[-1].split("|")[1].rstrip()
        assert len(bar) == BAR_WIDTH

    def test_no_numeric_columns_falls_back(self):
        text = render_chart(figure([{"component": "SoC", "desc": "stuff"}]))
        assert "component=SoC" in text

    def test_empty_rows_fall_back(self):
        text = render_chart(FigureResult("F", "t"))
        assert "F" in text

    def test_booleans_not_charted(self):
        text = render_chart(figure([{"name": "x", "flag": True, "v": 0.5}]))
        assert "flag" not in text.splitlines()[1]

    def test_render_all(self):
        text = render_all_charts([figure([{"v": 1.0}]), figure([{"v": 0.5}])])
        assert text.count("Figure A") == 2


class TestRealFigures:
    def test_fig01_charts(self):
        from repro.analysis.chrome_figures import fig01_scrolling_energy

        text = render_chart(fig01_scrolling_energy())
        assert "Google Docs" in text
        assert "#" in text
