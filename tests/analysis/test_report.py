"""Unit tests for the EXPERIMENTS.md report generator."""


from repro.analysis.base import FigureResult
from repro.analysis.report import EXPERIMENTS, render_markdown, write_experiments_md


class TestFigureResult:
    def test_render_text_contains_rows_and_anchors(self):
        r = FigureResult(
            figure_id="Figure X",
            title="test",
            rows=[{"a": 1, "b": 0.5}],
            anchors={"thing": (0.5, 0.52)},
            notes="a note",
        )
        text = r.render_text()
        assert "Figure X" in text
        assert "a=1" in text
        assert "thing" in text
        assert "a note" in text

    def test_anchor_within_absolute_for_fractions(self):
        r = FigureResult("f", "t", anchors={"x": (0.5, 0.58)})
        assert r.anchor_within("x", 0.10)
        assert not r.anchor_within("x", 0.05)

    def test_anchor_within_relative_for_magnitudes(self):
        r = FigureResult("f", "t", anchors={"x": (100.0, 120.0)})
        assert r.anchor_within("x", 0.25)
        assert not r.anchor_within("x", 0.10)


class TestReport:
    def test_sixteen_experiments(self):
        assert len(EXPERIMENTS) == 16

    def test_render_markdown_smoke(self):
        results = [
            FigureResult("Figure 1", "t", rows=[{"a": 1}], anchors={"x": (1.0, 1.1)})
        ]
        md = render_markdown(results)
        assert "## Figure 1" in md
        assert "| anchor | paper | measured |" in md

    def test_write_experiments_md(self, tmp_path):
        # Use a cheap subset by writing only the header-rendering path:
        # full generation is exercised (and asserted) in test_figures.
        path = tmp_path / "EXPERIMENTS.md"
        written = write_experiments_md(str(path))
        content = path.read_text()
        assert written == str(path)
        for fig in ("Table 1", "Figure 1", "Figure 21", "Headline"):
            assert "## %s" % fig in content


class TestCachedParallelResults:
    def test_cached_results_match_fresh(self, tmp_path):
        import time

        from repro.analysis.report import all_results
        from repro.core.memo import MemoCache

        cache = MemoCache(tmp_path)
        t0 = time.perf_counter()
        cold = all_results(cache=cache)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = all_results(cache=cache)
        warm_s = time.perf_counter() - t0
        assert [r.to_jsonable() for r in warm] == [r.to_jsonable() for r in cold]
        # Acceptance bar is <25% of the cold wall clock; a warm run does
        # no model work at all, so in practice it is ~1%.
        assert warm_s < 0.25 * cold_s

    def test_parallel_results_match_serial(self, tmp_path):
        from repro.analysis.report import EXPERIMENTS, all_results

        serial = all_results()
        parallel = all_results(jobs=2)
        assert len(serial) == len(EXPERIMENTS)
        assert [r.to_jsonable() for r in parallel] == [
            r.to_jsonable() for r in serial
        ]


class TestFigureResultJson:
    def test_roundtrip(self):
        r = FigureResult(
            "Figure X", "t", rows=[{"a": 1}], anchors={"x": (1.0, 1.1)}, notes="n"
        )
        back = FigureResult.from_jsonable(r.to_jsonable())
        assert back == r
        assert isinstance(back.anchors["x"], tuple)
