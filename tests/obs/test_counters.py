"""Unit tests for the counter/gauge registry."""

import threading

from repro.obs import CounterRegistry
from repro.obs.recorder import NullRecorder, Recorder, get_recorder, recording


class TestCounterRegistry:
    def test_add_accumulates(self):
        reg = CounterRegistry()
        reg.add("a.b", 2)
        reg.add("a.b", 3)
        reg.add("a.c")
        assert reg.get("a.b") == 5
        assert reg.get("a.c") == 1
        assert reg.get("missing", -1) == -1

    def test_set_is_last_write_wins(self):
        reg = CounterRegistry()
        reg.set("g", 1.5)
        reg.set("g", 2.5)
        assert reg.get("g") == 2.5

    def test_as_dict_sorted(self):
        reg = CounterRegistry()
        reg.add("z.last", 1)
        reg.add("a.first", 1)
        reg.set("m.middle", 7)
        assert list(reg.as_dict()) == ["a.first", "m.middle", "z.last"]

    def test_contains_and_len(self):
        reg = CounterRegistry()
        assert "x" not in reg and len(reg) == 0
        reg.add("x")
        reg.set("y", 0)
        assert "x" in reg and "y" in reg and len(reg) == 2

    def test_clear(self):
        reg = CounterRegistry()
        reg.add("x")
        reg.set("y", 1)
        reg.clear()
        assert len(reg) == 0

    def test_int_counters_stay_int(self):
        reg = CounterRegistry()
        reg.add("n", 1)
        reg.add("n", 2)
        assert isinstance(reg.get("n"), int)

    def test_merge_sums_counters_and_unions_gauges(self):
        parent = CounterRegistry()
        parent.add("hits", 10)
        parent.set("parent_only", 1.0)
        child = CounterRegistry()
        child.add("hits", 5)
        child.add("child_only", 2)
        child.set("gauge", 9.0)
        parent.merge(child.snapshot())
        assert parent.get("hits") == 15
        assert parent.get("child_only") == 2
        assert parent.get("gauge") == 9.0
        assert parent.get("parent_only") == 1.0

    def test_thread_safety_of_add(self):
        reg = CounterRegistry()
        per_thread, threads = 2000, 8

        def work():
            for _ in range(per_thread):
                reg.add("shared")

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert reg.get("shared") == per_thread * threads


class TestRecorderGlobals:
    def test_default_recorder_is_null(self):
        rec = get_recorder()
        assert isinstance(rec, NullRecorder)
        assert not rec.enabled

    def test_null_recorder_is_inert(self):
        rec = NullRecorder()
        with rec.span("anything"):
            rec.counters.add("x", 1)
            rec.counters.set("y", 2)
        assert rec.counters.as_dict() == {}
        assert rec.spans == []
        assert rec.counters.get("x", 5) == 5

    def test_recording_installs_and_restores(self):
        before = get_recorder()
        with recording() as rec:
            assert get_recorder() is rec
            assert isinstance(rec, Recorder)
            rec.counters.add("k")
        assert get_recorder() is before

    def test_recording_restores_on_error(self):
        before = get_recorder()
        try:
            with recording():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_recorder() is before

    def test_recorder_reset(self):
        rec = Recorder()
        with rec.span("s"):
            rec.counters.add("c")
        rec.reset()
        assert rec.spans == [] and len(rec.counters) == 0
