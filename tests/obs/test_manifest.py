"""Run-manifest tests: build/write/mask round trips, process-safe
aggregation, headline re-derivation, and the golden-manifest regression.

The golden test runs a tiny pinned configuration end-to-end under an
active recorder, masks the volatile fields (wall-clock, host, versions,
source digest), and compares the canonical JSON byte-for-byte against
``golden_manifest.json``.  Any silent counter drift — an energy constant
nudged, a coherence overhead miscounted, a counter renamed — fails the
byte comparison, the same way the figure tests catch output drift.
Regenerate the golden after an *intentional* model change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_manifest.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.config import default_system
from repro.core.runner import ExperimentRunner
from repro.obs import (
    build_manifest,
    config_hash,
    headline_from_counters,
    load_manifest,
    manifest_json,
    masked,
    recording,
    write_manifest,
)
from repro.obs.manifest import MASK, VOLATILE_KEYS
from repro.validate import strict_mode
from repro.workloads.chrome.targets import browser_pim_targets

GOLDEN_PATH = Path(__file__).parent / "golden_manifest.json"


def tiny_run_manifest() -> dict:
    """The pinned end-to-end run behind the golden test: two browser
    targets on the default Table 1 system, evaluated serially.

    Strict mode is pinned *off*: it publishes mode-dependent
    ``validate.*`` check counters, and the golden pins the model's
    counter surface, which must not vary with ``REPRO_STRICT``.
    """
    targets = browser_pim_targets()[:2]
    with strict_mode(False), recording() as rec:
        result = ExperimentRunner().evaluate(targets)
        return build_manifest(
            command="golden: evaluate 2 browser targets",
            config=default_system(),
            seed=0,
            results={
                "mean_pim_acc_energy_reduction":
                    result.mean_pim_acc_energy_reduction,
                "mean_pim_acc_speedup": result.mean_pim_acc_speedup,
                "targets": result.names,
            },
            recorder=rec,
        )


class TestManifestBasics:
    def test_build_contains_all_sections(self):
        with recording() as rec:
            rec.counters.add("test.counter", 3)
            with rec.span("test.stage"):
                pass
            manifest = build_manifest(command="unit", config=default_system())
        assert manifest["schema"] == "repro-run-manifest/v1"
        assert manifest["command"] == "unit"
        assert manifest["counters"]["test.counter"] == 3
        assert [s["name"] for s in manifest["spans"]] == ["test.stage"]
        assert manifest["config_hash"] == config_hash(default_system())
        assert len(manifest["code_version"]) == 16
        assert set(manifest["versions"]) == {"python", "numpy", "repro"}

    def test_config_hash_distinguishes_configs(self):
        from repro.config import CacheConfig

        assert config_hash(default_system()) == config_hash(default_system())
        assert config_hash(CacheConfig(1024, 2)) != config_hash(
            CacheConfig(2048, 2)
        )

    def test_write_into_directory_and_load(self, tmp_path):
        manifest = {"schema": "repro-run-manifest/v1", "counters": {}}
        path = write_manifest(tmp_path / "out", manifest)
        assert path == tmp_path / "out" / "manifest.json"
        assert load_manifest(tmp_path / "out") == manifest
        assert load_manifest(path) == manifest

    def test_write_to_explicit_file(self, tmp_path):
        path = write_manifest(tmp_path / "m.json", {"a": 1})
        assert path == tmp_path / "m.json"
        assert json.loads(path.read_text()) == {"a": 1}

    def test_masked_hides_volatile_keeps_counters(self):
        manifest = tiny_run_manifest()
        hidden = masked(manifest)
        for key in VOLATILE_KEYS:
            assert hidden[key] == MASK
        assert hidden["counters"] == manifest["counters"]
        assert hidden["results"] == manifest["results"]
        for span in hidden["spans"]:
            assert span["start_s"] == MASK and span["duration_s"] == MASK
            assert isinstance(span["name"], str)


class TestProcessAggregation:
    def test_parallel_evaluate_merges_child_counters(self):
        targets = browser_pim_targets()
        with recording() as rec:
            ExperimentRunner().evaluate(targets, jobs=2)
        counters = rec.counters.as_dict()
        assert counters["core.runner.targets"] == len(targets)
        for target in targets:
            key = "core.runner.target.%s.energy_j.pim_acc" % target.name
            assert counters[key] > 0
        # Worker spans came home too: one per-target span per target.
        names = [s.name for s in rec.spans]
        for target in targets:
            assert "core.runner.target.%s" % target.name in names

    def test_parallel_gauges_match_serial(self):
        targets = browser_pim_targets()
        with recording() as rec_serial:
            ExperimentRunner().evaluate(targets)
        with recording() as rec_parallel:
            ExperimentRunner().evaluate(targets, jobs=2)
        serial = rec_serial.counters.as_dict()
        parallel = rec_parallel.counters.as_dict()
        assert set(serial) == set(parallel)
        # Gauges (per-target results) are order-independent and must be
        # bit-identical; additive float sums may differ in merge order.
        for name, value in serial.items():
            if ".target." in name:
                assert parallel[name] == value, name
        assert parallel["core.runner.targets"] == serial["core.runner.targets"]


class TestHeadlineRederivation:
    def test_headline_rederives_from_counters_alone(self):
        """The acceptance check: a manifest's counters alone reproduce the
        paper's PIM-Acc headline (−55.4% energy / −54.2% time ≈ 2.2x)."""
        from repro.analysis.headline import all_pim_targets

        with recording() as rec:
            result = ExperimentRunner().evaluate(all_pim_targets())
            manifest = build_manifest(command="headline", recorder=rec)
        derived = headline_from_counters(manifest["counters"])
        # Exactly equal to the runner's own aggregates...
        assert (
            abs(
                derived["mean_pim_acc_energy_reduction"]
                - result.mean_pim_acc_energy_reduction
            )
            < 1e-12
        )
        assert (
            abs(derived["mean_pim_acc_speedup"] - result.mean_pim_acc_speedup)
            < 1e-12
        )
        # ...and within the reproduction's stated tolerance of the paper.
        assert abs(derived["mean_pim_acc_energy_reduction"] - 0.554) < 0.1
        assert abs(derived["mean_pim_core_energy_reduction"] - 0.491) < 0.1
        assert derived["mean_pim_acc_speedup"] > 1.542 - 0.5
        assert len(derived["targets"]) == len(all_pim_targets())

    def test_headline_from_empty_counters(self):
        derived = headline_from_counters({})
        assert derived["targets"] == []
        assert derived["mean_pim_acc_energy_reduction"] == 0.0


class TestGoldenManifest:
    def test_golden_manifest_byte_stable(self):
        got = manifest_json(masked(tiny_run_manifest()))
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_PATH.write_text(got)
        want = GOLDEN_PATH.read_text()
        assert got == want, (
            "manifest drifted from tests/obs/golden_manifest.json — if the "
            "model change is intentional, regenerate with "
            "REPRO_UPDATE_GOLDEN=1"
        )

    def test_golden_is_deterministic_across_runs(self):
        first = manifest_json(masked(tiny_run_manifest()))
        second = manifest_json(masked(tiny_run_manifest()))
        assert first == second
