"""Property tests for span nesting and the Chrome-trace export.

Hypothesis drives random open/close sequences (with-statement discipline:
a close always closes the most recently opened span) and asserts the
structural invariants the export formats rely on: durations are never
negative, every child's parent exists (no orphans), children are fully
contained within their parents, and same-parent siblings never overlap.
"""

from __future__ import annotations

import json
import threading

from hypothesis import given, settings, strategies as st

from repro.obs.recorder import Recorder
from repro.obs.spans import chrome_trace_events, spans_table, write_chrome_trace


def run_sequence(ops: list[bool]) -> Recorder:
    """Interpret True as span-open, False as close-most-recent."""
    rec = Recorder()
    stack = []
    for i, is_open in enumerate(ops):
        if is_open:
            handle = rec.span("s%d" % i)
            handle.__enter__()
            stack.append(handle)
        elif stack:
            stack.pop().__exit__(None, None, None)
    while stack:
        stack.pop().__exit__(None, None, None)
    return rec


class TestSpanProperties:
    @settings(max_examples=100)
    @given(ops=st.lists(st.booleans(), max_size=120))
    def test_nesting_invariants(self, ops):
        rec = run_sequence(ops)
        spans = rec.spans
        assert len(spans) == sum(ops)
        by_id = {s.span_id: s for s in spans}
        assert len(by_id) == len(spans)  # unique ids
        for s in spans:
            assert s.duration_s >= 0.0
            assert s.start_s >= 0.0
            if s.parent == -1:
                assert s.depth == 0
            else:
                parent = by_id.get(s.parent)
                assert parent is not None, "orphaned child %r" % (s,)
                assert parent.depth == s.depth - 1
                # Containment: the child opened after and closed before.
                assert parent.start_s <= s.start_s
                assert (
                    s.start_s + s.duration_s
                    <= parent.start_s + parent.duration_s
                )

    @settings(max_examples=100)
    @given(ops=st.lists(st.booleans(), max_size=120))
    def test_siblings_never_overlap(self, ops):
        spans = run_sequence(ops).spans
        by_parent: dict[int, list] = {}
        for s in spans:
            by_parent.setdefault(s.parent, []).append(s)
        for siblings in by_parent.values():
            siblings.sort(key=lambda s: s.start_s)
            for first, second in zip(siblings, siblings[1:]):
                assert first.start_s + first.duration_s <= second.start_s

    @settings(max_examples=100)
    @given(ops=st.lists(st.booleans(), max_size=120))
    def test_chrome_export_is_valid(self, ops):
        spans = run_sequence(ops).spans
        events = chrome_trace_events(spans)
        assert len(events) == len(spans)
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["name"], str)
            assert event["args"]["depth"] >= 0
        # Chronological within the (single) process.
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)

    @settings(max_examples=50)
    @given(ops=st.lists(st.booleans(), max_size=60))
    def test_snapshot_merge_preserves_structure(self, ops):
        child = run_sequence(ops)
        parent = Recorder()
        with parent.span("parent.work"):
            pass
        parent.merge_snapshot(child.snapshot())
        spans = parent.spans
        assert len(spans) == sum(ops) + 1
        by_id = {s.span_id: s for s in spans}
        assert len(by_id) == len(spans)  # rebasing avoided id collisions
        for s in spans:
            if s.parent != -1:
                assert s.parent in by_id


class TestSpanExports:
    def test_empty_table(self):
        assert spans_table([]) == "(no spans recorded)"

    def test_table_contains_names_and_indentation(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        table = spans_table(rec.spans)
        assert "outer" in table and "  inner" in table

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        rec = Recorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
        path = write_chrome_trace(tmp_path / "trace.json", rec.spans)
        with open(path) as f:
            document = json.load(f)
        assert document["displayTimeUnit"] == "ms"
        assert [e["name"] for e in document["traceEvents"]] == ["a", "b"]

    def test_threaded_spans_record_distinct_tids(self):
        rec = Recorder()
        barrier = threading.Barrier(4)  # all threads alive at once, so
        # thread identifiers cannot be reused across them

        def work():
            with rec.span("threaded"):
                barrier.wait(timeout=10)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = rec.spans
        assert len(spans) == 4
        assert all(s.depth == 0 for s in spans)  # stacks are per-thread
        assert len({s.tid for s in spans}) == 4
