"""The reproduction scorecard: paper anchors hit within tolerance."""

from repro.analysis.scorecard import full_scorecard


def test_scorecard(benchmark):
    card = benchmark.pedantic(full_scorecard, rounds=1, iterations=1)
    print("\n" + card.render_text())
    assert card.pass_rate >= 0.85
