"""Trace-engine replay throughput: per-access oracle vs line-run fast path.

The headline perf metric for the fast trace engine: replay throughput
(trace lines replayed per second) of ``CacheHierarchy.replay`` (the
per-access oracle) against ``CacheHierarchy.replay_fast`` (line-run
compression), on byte-granularity traces of ≥1M accesses.

Run directly to record the numbers that EXPERIMENTS.md's Performance
section is generated from::

    PYTHONPATH=src python benchmarks/bench_perf_trace_engine.py

which rewrites ``benchmarks/BENCH_trace_engine.json``.  Under pytest the
module asserts the acceptance bar instead: bit-identical statistics and
≥5x throughput on a ≥1M-access trace.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.sim.cache import CacheHierarchy
from repro.sim.trace import MemoryTrace, TraceRecorder

JSON_PATH = Path(__file__).resolve().parent / "BENCH_trace_engine.json"

#: Acceptance bar for the fast path on the big streaming trace.
REQUIRED_SPEEDUP = 5.0


def streaming_trace(total_bytes: int = 4 << 20, passes: int = 2) -> MemoryTrace:
    """Byte-granularity read stream: the 4K-frame-decode shape."""
    rec = TraceRecorder(granularity=8)
    for _ in range(passes):
        rec.read(0, total_bytes)
    return rec.trace()


def write_heavy_trace(total_bytes: int = 4 << 20, passes: int = 2) -> MemoryTrace:
    """Byte-granularity write stream: dirty evictions on every miss."""
    rec = TraceRecorder(granularity=8)
    for _ in range(passes):
        rec.write(0, total_bytes)
    return rec.trace()


def mixed_trace(seed: int = 7) -> MemoryTrace:
    """LLC-resident reuse + strided rows + scattered element reads."""
    rng = np.random.default_rng(seed)
    rec = TraceRecorder(granularity=8)
    for _ in range(3):
        rec.read(0, 512 * 1024)
        rec.write(0, 256 * 1024)
    for i in range(4000):
        rec.read((1 << 26) + i * 4096, 256)
    rec.read_indices(
        1 << 28, rng.integers(0, 1 << 22, 100_000, dtype=np.uint64), element_size=4
    )
    return rec.trace()


TRACES = (
    ("streaming-read", streaming_trace),
    ("streaming-write", write_heavy_trace),
    ("mixed-locality", mixed_trace),
)


def measure(trace: MemoryTrace) -> dict:
    """Time both replay paths on one trace and check equivalence."""
    t0 = time.perf_counter()
    oracle = CacheHierarchy().replay(trace)
    baseline_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = CacheHierarchy().replay_fast(trace)
    fast_s = time.perf_counter() - t0
    if fast != oracle:
        raise AssertionError("replay_fast diverged from the per-access oracle")
    n = len(trace)
    return {
        "accesses": n,
        "baseline_s": baseline_s,
        "fast_s": fast_s,
        "baseline_lines_per_s": n / baseline_s,
        "fast_lines_per_s": n / fast_s,
        "speedup": baseline_s / fast_s,
    }


def run() -> dict:
    rows = []
    for name, build in TRACES:
        row = {"name": name}
        row.update(measure(build()))
        rows.append(row)
    speedups = [r["speedup"] for r in rows]
    return {
        "bench": "trace_engine_replay",
        "generated_by": "benchmarks/bench_perf_trace_engine.py",
        "traces": rows,
        "headline_speedup": float(np.exp(np.mean(np.log(speedups)))),
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_fast_replay_speedup_on_1m_trace():
    trace = streaming_trace()
    assert len(trace) >= 1_000_000
    row = measure(trace)  # raises if the stats diverge
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        "fast replay only %.1fx over the oracle" % row["speedup"]
    )


def test_fast_replay_throughput(benchmark):
    trace = streaming_trace(total_bytes=1 << 20, passes=1)
    hierarchy = CacheHierarchy()

    def replay():
        hierarchy.reset()
        return hierarchy.replay_fast(trace)

    stats = benchmark(replay)
    assert stats.l1.accesses == len(trace)


def main() -> int:
    record = run()
    with open(JSON_PATH, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    for row in record["traces"]:
        print(
            "%-16s %9d accesses  %10.0f -> %10.0f lines/s  (%.1fx)"
            % (
                row["name"],
                row["accesses"],
                row["baseline_lines_per_s"],
                row["fast_lines_per_s"],
                row["speedup"],
            )
        )
    print("headline speedup: %.1fx" % record["headline_speedup"])
    print("wrote %s" % JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
