"""Figure 2: component/function energy breakdown, Google Docs scroll."""

from repro.analysis.chrome_figures import fig02_docs_breakdown


def test_fig02(benchmark, show):
    result = benchmark(fig02_docs_breakdown)
    show(result)
    assert result.anchor_within("data movement fraction of total energy", 0.10)
