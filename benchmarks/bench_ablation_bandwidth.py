"""Ablation: internal-to-off-chip bandwidth ratio (paper: 8x).

Sweeps the 3D-stack's internal bandwidth from 2x to 16x the off-chip
channel and reports the mean PIM-Acc speedup on the browser kernels.
"""

import pytest

from repro.config import GB, StackedMemoryConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.workloads.chrome.targets import browser_pim_targets


def sweep_ratio(ratio: float):
    system = SystemConfig(
        stacked_memory=StackedMemoryConfig(internal_bandwidth=ratio * 32 * GB)
    )
    return ExperimentRunner(system).evaluate(browser_pim_targets())


@pytest.mark.parametrize("ratio", [2, 4, 8, 16])
def test_bandwidth_ratio(benchmark, ratio):
    result = benchmark.pedantic(sweep_ratio, args=(ratio,), rounds=1, iterations=1)
    print(
        "\ninternal/off-chip = %dx: mean PIM-Acc speedup %.2f"
        % (ratio, result.mean_pim_acc_speedup)
    )


def test_more_internal_bandwidth_never_hurts():
    speeds = [sweep_ratio(r).mean_pim_acc_speedup for r in (2, 4, 8, 16)]
    assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))
