"""Figure 19: TensorFlow kernels on PIM + GEMM-count sweep."""

from repro.analysis.tensorflow_figures import fig19_tf_pim


def test_fig19(benchmark, show):
    result = benchmark(fig19_tf_pim)
    show(result)
    assert result.anchor_within("mean PIM-Core energy reduction", 0.09)
