"""Extension: thermal envelopes -- SoC throttling relief and the
logic-layer power budget check."""

from repro.analysis.headline import all_pim_targets
from repro.energy.thermal import ThermalModel
from repro.workloads.vp9.profiles import encoder_functions


def test_throttling_relief(benchmark):
    model = ThermalModel()
    functions = encoder_functions(1280, 720, 30)
    cpu, pim = benchmark.pedantic(
        model.workload_throttling, args=(functions,), rounds=1, iterations=1
    )
    print(
        "\nHD capture: SoC power %.1f W -> %.1f W with PIM "
        "(throttle %.2fx -> %.2fx)"
        % (cpu.raw_power_w, pim.raw_power_w,
           1 / cpu.throttle_factor, 1 / pim.throttle_factor)
    )
    assert pim.raw_power_w < cpu.raw_power_w


def test_logic_layer_budget(benchmark):
    model = ThermalModel()
    checks = benchmark.pedantic(
        model.check_all_targets, args=(all_pim_targets(),), rounds=1,
        iterations=1,
    )
    print()
    for c in checks:
        print(
            "%-26s %5.2f W  (%4.1f%% of logic-layer budget)"
            % (c.target, c.pim_power_w, 100 * c.fraction_of_budget)
        )
        assert c.fits
