"""Extension: two-way video call (simultaneous encode + decode)."""

from repro.workloads.vp9.conferencing import evaluate_conferencing


def test_conferencing(benchmark):
    r = benchmark.pedantic(evaluate_conferencing, rounds=1, iterations=1)
    print(
        "\n1 s HD call: CPU %.2f J -> PIM %.2f J (-%.0f%%), offloadable "
        "share %.0f%%"
        % (r.cpu_energy_j, r.pim_energy_j, 100 * r.energy_reduction,
           100 * r.offloadable_share)
    )
    assert r.energy_reduction > 0.15
