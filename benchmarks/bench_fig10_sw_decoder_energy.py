"""Figure 10: VP9 software decoder energy by function (4K)."""

from repro.analysis.video_figures import fig10_sw_decoder_energy


def test_fig10(benchmark, show):
    result = benchmark(fig10_sw_decoder_energy)
    show(result)
    assert result.anchor_within("sub-pixel interpolation share", 0.10)
