"""Extension: device battery-life impact of PIM (motivation, Section 1)."""

from repro.energy.battery import BatteryModel, UsageMix


def test_battery_estimate(benchmark):
    model = BatteryModel()
    estimate = benchmark.pedantic(model.estimate, rounds=1, iterations=1)
    print(
        "\ndefault mix: CPU-only %.1f h, PIM %.1f h (+%.1f%%)"
        % (estimate.cpu_only_hours, estimate.pim_hours, 100 * estimate.improvement)
    )
    assert estimate.improvement > 0.05


def test_usage_mix_sweep():
    model = BatteryModel()
    mixes = {
        "browsing-heavy": UsageMix(0.8, 0.1, 0.02, 0.08),
        "video-heavy": UsageMix(0.1, 0.8, 0.02, 0.08),
        "ml-heavy": UsageMix(0.1, 0.1, 0.02, 0.78),
    }
    print()
    for name, mix in mixes.items():
        e = model.estimate(mix)
        print("%-16s +%.1f%% battery life" % (name, 100 * e.improvement))
