"""Figure 7: TensorFlow Mobile execution-time breakdown."""

from repro.analysis.tensorflow_figures import fig07_tf_time


def test_fig07(benchmark, show):
    result = benchmark(fig07_tf_time)
    show(result)
    assert result.anchor_within("avg packing+quantization time share", 0.08)
