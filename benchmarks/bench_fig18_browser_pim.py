"""Figure 18: browser kernels, CPU-Only vs PIM-Core vs PIM-Acc."""

from repro.analysis.chrome_figures import fig18_browser_pim


def test_fig18(benchmark, show):
    result = benchmark(fig18_browser_pim)
    show(result)
    assert result.anchor_within("mean PIM-Core energy reduction", 0.08)
    assert result.anchor_within("mean PIM-Acc energy reduction", 0.10)
