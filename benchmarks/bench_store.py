"""Segment-store throughput: file-per-entry vs append-only segment blobs.

The headline perf metric for the segment-merged result store: the cost
of persisting, re-reading, and resuming from N cached results.  The
baseline is the pre-segment layout — the memo cache's one-JSON-document-
per-entry two-phase commit (write ``*.tmp.<pid>``, ``os.replace``) and
the checkpoint journal's fsync-per-line JSONL — whose cost is dominated
by per-entry file opens and renames, the storage-layer face of the
paper's data-movement tax.  The segment path buffers entries and flushes
them as single append-only blobs with an in-blob offset index
(:mod:`repro.core.store`), so N entries cost a handful of writes.

Three paths are measured per payload shape, every run verifying the
values read back are identical between layouts:

* **write**: persist N entries (the acceptance bar: a >=5x entries/sec
  geomean over file-per-entry);
* **hit**: a fresh process re-reads all N entries through
  :class:`repro.core.memo.MemoCache` (gate: no worse than legacy);
* **resume**: :class:`repro.core.resilience.SweepCheckpoint` loads an
  N-entry journal (gate: no worse than legacy JSONL).

Run directly to record the numbers EXPERIMENTS.md's Performance section
cites::

    PYTHONPATH=src python benchmarks/bench_store.py

which rewrites ``benchmarks/BENCH_store.json`` with full-size and
quick-size measurements.  ``--quick`` is the CI perf-smoke mode: it
re-measures at the quick sizes and fails if any write speedup fell more
than ``REGRESSION_FACTOR``x below the committed baseline, or a hit/
resume path fell below ``NOT_WORSE_FLOOR`` (speedups, not wall-clock,
so the gate is machine-independent).  Under pytest the module asserts
the acceptance bar instead: a >=5x write geomean at full size, with
hit/resume no worse than legacy within timer noise.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.memo import MemoCache
from repro.core.resilience import SweepCheckpoint

JSON_PATH = Path(__file__).resolve().parent / "BENCH_store.json"

#: Acceptance bar for the full-size write-path geomean (pytest gate).
REQUIRED_WRITE_SPEEDUP = 5.0
#: Hit/resume paths must be "no worse" than the legacy layout; timer
#: noise on sub-100ms reads wobbles +-20%, so the floor is below 1.0.
NOT_WORSE_FLOOR = 0.8
#: ``--quick`` fails when a write speedup drops below
#: committed_speedup / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0

#: Entries buffered per segment flush on the write path.  Mirrors what a
#: sweep producer passes via ``--cache-flush-every``; the legacy layout
#: has no equivalent knob (every put is its own file regardless).
FLUSH_EVERY = 64


def _payloads(quick: bool) -> list:
    """(name, entry_count, make_payload) per benchmarked payload shape."""
    scale = 5 if quick else 1
    return [
        ("tiny_results", 2000 // scale, lambda i: {"i": i, "ok": True}),
        (
            "figure_rows",
            500 // scale,
            lambda i: {
                "figure": "F%d" % i,
                "rows": [
                    {"x": j, "baseline": j * 0.5, "pim": j * 0.25}
                    for j in range(40)
                ],
            },
        ),
    ]


# ----------------------------------------------------------------------
# Legacy layouts (the pre-segment write paths, reproduced exactly)
# ----------------------------------------------------------------------

def _legacy_memo_put(directory: Path, cache: MemoCache, name, value) -> None:
    """The old MemoCache.put: a two-phase-commit JSON document per entry."""
    value_json = json.dumps(value, sort_keys=True)
    document = {
        "name": name,
        "version": cache.version,
        "value": value,
        "checksum": MemoCache._checksum(value_json),
    }
    path = cache._path(name, None)
    tmp = path.with_suffix(".tmp.%d" % os.getpid())
    with open(tmp, "w") as f:
        json.dump(document, f)
    os.replace(tmp, path)


def _legacy_journal_write(path: Path, key: str, items) -> None:
    """The old SweepCheckpoint: header + one fsync'd JSONL line per entry."""
    with open(path, "w") as f:
        f.write(json.dumps({"schema": SweepCheckpoint.SCHEMA, "key": key}))
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
        for name, payload in items:
            body = json.dumps(payload, sort_keys=True)
            f.write(json.dumps({
                "name": name,
                "payload": payload,
                "sha": hashlib.sha256(body.encode()).hexdigest()[:16],
            }))
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())


# ----------------------------------------------------------------------
# Measured paths
# ----------------------------------------------------------------------

def _write_legacy(directory: Path, items) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    cache = MemoCache(directory, version="bench")
    for name, value in items:
        _legacy_memo_put(directory, cache, name, value)


def _write_segment(directory: Path, items) -> None:
    cache = MemoCache(directory, version="bench", flush_every=FLUSH_EVERY)
    for name, value in items:
        cache.put(name, value)
    cache.close()


def _read_all(directory: Path, names) -> list:
    """A fresh cache (new process's view) re-reading every entry."""
    cache = MemoCache(directory, version="bench")
    return [cache.get(name) for name in names]


def measure(name: str, count: int, make_payload) -> dict:
    """Time write/hit/resume for one payload shape across both layouts."""
    items = [("%s-%05d" % (name, i), make_payload(i)) for i in range(count)]
    names = [n for n, _ in items]
    values = [v for _, v in items]
    root = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        legacy_dir, segment_dir = root / "legacy", root / "segment"

        def write_legacy():
            shutil.rmtree(legacy_dir, ignore_errors=True)
            _write_legacy(legacy_dir, items)

        def write_segment():
            shutil.rmtree(segment_dir, ignore_errors=True)
            _write_segment(segment_dir, items)

        write = {
            "legacy_s": _best(write_legacy, 2),
            "segment_s": _best(write_segment, 3),
        }
        # Both layouts must read back exactly what was written.
        if _read_all(legacy_dir, names) != values:
            raise AssertionError("%s: legacy layout altered a value" % name)
        if _read_all(segment_dir, names) != values:
            raise AssertionError("%s: segment layout altered a value" % name)
        hit = {
            "legacy_s": _best(lambda: _read_all(legacy_dir, names), 3),
            "segment_s": _best(lambda: _read_all(segment_dir, names), 3),
        }

        legacy_journal = root / "legacy.jsonl"
        segment_journal = root / "segment.jsonl"
        _legacy_journal_write(legacy_journal, "bench", items)
        journal = SweepCheckpoint(segment_journal, key="bench")
        for entry_name, payload in items:
            journal.append(entry_name, payload)
        journal.close()
        reference = dict(items)
        for path in (legacy_journal, segment_journal):
            if SweepCheckpoint(path, key="bench").entries() != reference:
                raise AssertionError("%s: journal %s diverged" % (name, path))
        resume = {
            "legacy_s": _best(
                lambda: SweepCheckpoint(legacy_journal, key="bench").entries(), 3
            ),
            "segment_s": _best(
                lambda: SweepCheckpoint(segment_journal, key="bench").entries(), 3
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    row = {"name": name, "entries": count}
    for path_name, timings in (("write", write), ("hit", hit), ("resume", resume)):
        row[path_name] = {
            "legacy_s": timings["legacy_s"],
            "segment_s": timings["segment_s"],
            "legacy_entries_per_s": count / timings["legacy_s"],
            "segment_entries_per_s": count / timings["segment_s"],
            "speedup": timings["legacy_s"] / timings["segment_s"],
        }
    return row


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _geomean(speedups) -> float:
    return float(np.exp(np.mean(np.log(speedups))))


def run(quick: bool) -> list:
    return [
        measure(name, count, make)
        for name, count, make in _payloads(quick)
    ]


def _print_rows(rows) -> None:
    for row in rows:
        print(
            "%-14s %5d entries  write %6.1fx  hit %5.2fx  resume %5.2fx"
            % (
                row["name"],
                row["entries"],
                row["write"]["speedup"],
                row["hit"]["speedup"],
                row["resume"]["speedup"],
            )
        )
    print(
        "headline write speedup: %.1fx (entries/sec vs file-per-entry)"
        % _geomean([r["write"]["speedup"] for r in rows])
    )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_write_path_meets_speedup_bar():
    rows = run(quick=False)  # raises if either layout alters a value
    headline = _geomean([r["write"]["speedup"] for r in rows])
    assert headline >= REQUIRED_WRITE_SPEEDUP, (
        "write path only %.1fx entries/sec over file-per-entry" % headline
    )
    for row in rows:
        for path_name in ("hit", "resume"):
            assert row[path_name]["speedup"] >= NOT_WORSE_FLOOR, (
                "%s %s path %.2fx: worse than the legacy layout"
                % (row["name"], path_name, row[path_name]["speedup"])
            )


def test_quick_write_path_faster_than_file_per_entry():
    for row in run(quick=True):
        assert row["write"]["speedup"] > 1.0, (
            "%s segment writes slower than file-per-entry (%.2fx)"
            % (row["name"], row["write"]["speedup"])
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _check_regressions(rows) -> int:
    """Compare quick-size speedups against the committed baseline."""
    committed = {
        r["name"]: r for r in json.loads(JSON_PATH.read_text())["quick_sweeps"]
    }
    failures = []
    for row in rows:
        baseline = committed.get(row["name"])
        if baseline is None:
            continue  # new payload shape, no baseline yet
        # Quick sizes finish in milliseconds, so speedups wobble hard;
        # never demand more than the acceptance bar itself — a run that
        # still clears 5x is noise, not a regression.
        floor = min(
            baseline["write"]["speedup"] / REGRESSION_FACTOR,
            REQUIRED_WRITE_SPEEDUP,
        )
        if row["write"]["speedup"] < floor:
            failures.append(
                "%s write: %.1fx, below %.1fx (committed %.1fx / %g)"
                % (
                    row["name"],
                    row["write"]["speedup"],
                    floor,
                    baseline["write"]["speedup"],
                    REGRESSION_FACTOR,
                )
            )
        for path_name in ("hit", "resume"):
            if row[path_name]["speedup"] < NOT_WORSE_FLOOR:
                failures.append(
                    "%s %s: %.2fx, below the %.2fx no-worse floor"
                    % (
                        row["name"],
                        path_name,
                        row[path_name]["speedup"],
                        NOT_WORSE_FLOOR,
                    )
                )
    for failure in failures:
        print("PERF REGRESSION %s" % failure)
    if not failures:
        print(
            "no path regressed more than %gx vs baseline" % REGRESSION_FACTOR
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="perf-smoke mode: quick sizes, compare against the committed "
        "baseline instead of rewriting it",
    )
    args = parser.parse_args(argv)
    if args.quick:
        rows = run(quick=True)
        _print_rows(rows)
        return _check_regressions(rows)
    full_rows = run(quick=False)
    quick_rows = run(quick=True)
    record = {
        "bench": "store",
        "generated_by": "benchmarks/bench_store.py",
        "flush_every": FLUSH_EVERY,
        "sweeps": full_rows,
        "quick_sweeps": quick_rows,
        "headline_write_speedup": _geomean(
            [r["write"]["speedup"] for r in full_rows]
        ),
    }
    with open(JSON_PATH, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    _print_rows(full_rows)
    print("wrote %s" % JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
