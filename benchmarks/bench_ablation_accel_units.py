"""Ablation: in-memory logic units per PIM accelerator (paper: four).

More units raise compute throughput; the streaming kernels saturate the
vault's internal bandwidth quickly, which is why four small units
suffice (Section 4.2.2).
"""

import pytest

from repro.config import PimAcceleratorConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.workloads.chrome.targets import browser_pim_targets


def sweep_units(units: int):
    system = SystemConfig(pim_accelerator=PimAcceleratorConfig(logic_units=units))
    return ExperimentRunner(system).evaluate(browser_pim_targets())


@pytest.mark.parametrize("units", [1, 2, 4, 8])
def test_accelerator_units(benchmark, units):
    result = benchmark.pedantic(sweep_units, args=(units,), rounds=1, iterations=1)
    print(
        "\n%d units: mean PIM-Acc speedup %.2f" % (units, result.mean_pim_acc_speedup)
    )


def test_four_units_saturate_streaming_kernels():
    four = sweep_units(4)
    eight = sweep_units(8)
    tiling_gain = (
        eight.by_name("texture_tiling").pim_acc_speedup
        / four.by_name("texture_tiling").pim_acc_speedup
    )
    assert tiling_gain < 1.1  # memory-bound: doubling compute buys <10%
