"""Vectorized kernel throughput: scalar oracles vs NumPy fast paths.

Times every scalar/fast engine pair introduced by the vectorized kernel
engine — VP9 sub-pixel interpolation, deblocking, motion-search SAD,
texture-tiling tracing, compositing tracing, LZO compress/decompress,
and the event-driven timing replay — and checks on every run that the
two engines still agree exactly.

Run directly to record the numbers EXPERIMENTS.md's kernel table is
generated from::

    PYTHONPATH=src python benchmarks/bench_perf_kernels.py

which rewrites ``benchmarks/BENCH_kernels.json`` with full-size and
quick-size measurements.  ``--quick`` is the CI perf-smoke mode: it
re-measures at the quick sizes and fails if any kernel's speedup fell
more than ``REGRESSION_FACTOR``x below the committed baseline (speedup,
not wall-clock, so the gate is machine-independent).  Under pytest the
module asserts the acceptance bar instead: ≥5x on the headline kernels.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.sim.timing import TimingParameters, TimingSimulator
from repro.sim.trace import TraceRecorder
from repro.workloads.chrome import lzo
from repro.workloads.chrome.texture import compositing_trace, linear_to_tiled_traced
from repro.workloads.vp9.deblock import DeblockStats, deblock_frame
from repro.workloads.vp9.frame import Frame
from repro.workloads.vp9.mc import interpolate_block
from repro.workloads.vp9.me import full_search, diamond_search, SearchStats

JSON_PATH = Path(__file__).resolve().parent / "BENCH_kernels.json"

#: Acceptance bar for the headline kernels (pytest gate).
REQUIRED_SPEEDUP = 5.0
#: ``--quick`` fails when a kernel's measured speedup drops below
#: committed_speedup / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0
#: Kernels whose speedup the pytest gate holds to REQUIRED_SPEEDUP.
#: (diamond search and LZO compress are control-flow-bound — the greedy
#: parse and the mid-ring re-centering are inherently sequential — so
#: their smaller gains are recorded but not gated at 5x.)
GATED = ("mc_interpolate", "deblock", "me_full_search", "timing_replay")


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _build_kernels(quick: bool) -> list:
    """(name, scalar_fn, fast_fn, check_equal) for every engine pair."""
    rng = np.random.default_rng(20180324)
    kernels = []

    # --- VP9 sub-pixel interpolation -----------------------------------
    mc_size = 48 if quick else 128
    ref = rng.integers(0, 256, (mc_size + 16, mc_size + 16), dtype=np.uint8)
    kernels.append(
        (
            "mc_interpolate",
            lambda: interpolate_block(ref, 2, 2, 3, 2, mc_size, mc_size, fast=False),
            lambda: interpolate_block(ref, 2, 2, 3, 2, mc_size, mc_size, fast=True),
            lambda a, b: np.array_equal(a, b),
        )
    )

    # --- VP9 deblocking ------------------------------------------------
    db_size = 64 if quick else 256
    frame = Frame(pixels=(rng.integers(0, 256, (db_size, db_size)) // 16 + 96).astype(np.uint8))
    kernels.append(
        (
            "deblock",
            lambda: deblock_frame(frame, stats=DeblockStats(), fast=False),
            lambda: deblock_frame(frame, stats=DeblockStats(), fast=True),
            lambda a, b: np.array_equal(a.pixels, b.pixels),
        )
    )

    # --- Motion search SAD ---------------------------------------------
    me_range = 4 if quick else 8
    me_ref = rng.integers(0, 256, (64, 64), dtype=np.uint8)
    me_cur = rng.integers(0, 256, (16, 16), dtype=np.uint8)
    kernels.append(
        (
            "me_full_search",
            lambda: full_search(me_cur, me_ref, 1, 1, me_range, SearchStats(), fast=False),
            lambda: full_search(me_cur, me_ref, 1, 1, me_range, SearchStats(), fast=True),
            lambda a, b: a == b,
        )
    )
    kernels.append(
        (
            "me_diamond_search",
            lambda: diamond_search(me_cur, me_ref, 1, 1, 16, SearchStats(), fast=False),
            lambda: diamond_search(me_cur, me_ref, 1, 1, 16, SearchStats(), fast=True),
            lambda a, b: a == b,
        )
    )

    # --- Texture tiling trace recording --------------------------------
    tex_size = 128 if quick else 512
    bitmap = rng.integers(0, 256, (tex_size, tex_size, 4), dtype=np.uint8)

    def tile(fast: bool):
        rec = TraceRecorder()
        linear_to_tiled_traced(bitmap, rec, fast=fast)
        return rec.range_records()

    kernels.append(
        (
            "texture_tiling_trace",
            lambda: tile(False),
            lambda: tile(True),
            lambda a, b: a == b,
        )
    )
    kernels.append(
        (
            "compositing_trace",
            lambda: compositing_trace(tex_size, tex_size, tiled=True, fast=False),
            lambda: compositing_trace(tex_size, tex_size, tiled=True, fast=True),
            lambda a, b: np.array_equal(a.addresses, b.addresses),
        )
    )

    # --- LZO ------------------------------------------------------------
    lzo_n = 32 * 1024 if quick else 128 * 1024
    lzo_data = rng.integers(0, 256, lzo_n, dtype=np.uint8).tobytes()
    kernels.append(
        (
            "lzo_compress",
            lambda: lzo.compress(lzo_data, fast=False)[0],
            lambda: lzo.compress(lzo_data, fast=True)[0],
            lambda a, b: a == b,
        )
    )
    run_data = bytes([42]) * (lzo_n * 2)
    compressed, _ = lzo.compress(run_data)
    kernels.append(
        (
            "lzo_decompress",
            lambda: lzo.decompress(compressed, fast=False)[0],
            lambda: lzo.decompress(compressed, fast=True)[0],
            lambda a, b: a == b,
        )
    )

    # --- Event-driven timing replay ------------------------------------
    # The bandwidth-floor shape: every access its own DRAM miss and a
    # huge MSHR pool, where the oracle's O(mshrs) in-flight filtering is
    # quadratic and the deque-based fast path is linear.
    rec = TraceRecorder(granularity=64)
    rec.read(0, (128 if quick else 512) * 1024)
    timing_trace = rec.trace()
    params = TimingParameters(mshrs=10_000)
    kernels.append(
        (
            "timing_replay",
            lambda: TimingSimulator(params=params).replay(
                timing_trace, instructions_per_access=0.1
            ),
            lambda: TimingSimulator(params=params).replay_fast(
                timing_trace, instructions_per_access=0.1
            ),
            lambda a, b: a == b,
        )
    )
    return kernels


def measure(name, scalar_fn, fast_fn, check_equal, fast_reps: int = 5) -> dict:
    """Time one engine pair and verify the engines still agree."""
    if not check_equal(scalar_fn(), fast_fn()):
        raise AssertionError("%s: fast path diverged from scalar oracle" % name)
    scalar_s = _best(scalar_fn, 1)
    fast_s = _best(fast_fn, fast_reps)
    return {
        "name": name,
        "scalar_s": scalar_s,
        "fast_s": fast_s,
        "speedup": scalar_s / fast_s,
    }


def run(quick: bool) -> list:
    return [measure(*kernel) for kernel in _build_kernels(quick)]


def _geomean(speedups) -> float:
    return float(np.exp(np.mean(np.log(speedups))))


def _print_rows(rows) -> None:
    for row in rows:
        print(
            "%-22s scalar %9.4fs  fast %9.4fs  (%.1fx)"
            % (row["name"], row["scalar_s"], row["fast_s"], row["speedup"])
        )
    print("headline speedup: %.1fx" % _geomean([r["speedup"] for r in rows]))


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_fast_kernels_meet_speedup_bar():
    rows = {r["name"]: r for r in run(quick=True)}  # raises on divergence
    for name in GATED:
        assert rows[name]["speedup"] >= REQUIRED_SPEEDUP, (
            "%s only %.1fx over its scalar oracle"
            % (name, rows[name]["speedup"])
        )


def test_all_kernels_faster_than_oracle():
    for row in run(quick=True):
        assert row["speedup"] > 1.0, (
            "%s fast path slower than its scalar oracle (%.2fx)"
            % (row["name"], row["speedup"])
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _check_regressions(rows) -> int:
    """Compare quick-size speedups against the committed baseline."""
    committed = {
        r["name"]: r for r in json.loads(JSON_PATH.read_text())["quick_kernels"]
    }
    failures = []
    for row in rows:
        baseline = committed.get(row["name"])
        if baseline is None:
            continue  # new kernel, no baseline yet
        floor = baseline["speedup"] / REGRESSION_FACTOR
        if row["speedup"] < floor:
            failures.append(
                "%s: %.1fx, below %.1fx (committed %.1fx / %g)"
                % (
                    row["name"],
                    row["speedup"],
                    floor,
                    baseline["speedup"],
                    REGRESSION_FACTOR,
                )
            )
    for failure in failures:
        print("PERF REGRESSION %s" % failure)
    if not failures:
        print("no kernel regressed more than %gx vs baseline" % REGRESSION_FACTOR)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="perf-smoke mode: quick sizes, compare against the committed "
        "baseline instead of rewriting it",
    )
    args = parser.parse_args(argv)
    if args.quick:
        rows = run(quick=True)
        _print_rows(rows)
        return _check_regressions(rows)
    full_rows = run(quick=False)
    quick_rows = run(quick=True)
    record = {
        "bench": "vectorized_kernels",
        "generated_by": "benchmarks/bench_perf_kernels.py",
        "kernels": full_rows,
        "quick_kernels": quick_rows,
        "headline_speedup": _geomean([r["speedup"] for r in full_rows]),
    }
    with open(JSON_PATH, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    _print_rows(full_rows)
    print("wrote %s" % JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
