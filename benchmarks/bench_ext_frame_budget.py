"""Extension: the 60 FPS scroll frame budget with and without PIM."""

from repro.workloads.chrome.frame_budget import FRAME_BUDGET_S, scroll_survey
from repro.workloads.chrome.pages import PAGES


def test_frame_budget(benchmark):
    survey = benchmark.pedantic(
        scroll_survey, args=(PAGES,), rounds=1, iterations=1
    )
    print("\nframe budget = %.1f ms" % (FRAME_BUDGET_S * 1e3))
    for ft in survey:
        print(
            "%-16s CPU %5.2f ms (%3.0f fps) -> PIM %5.2f ms (%3.0f fps)"
            % (ft.page, ft.cpu_only_s * 1e3, ft.cpu_fps,
               ft.with_pim_s * 1e3, ft.pim_fps)
        )
        assert ft.with_pim_s <= ft.cpu_only_s * 1.001
