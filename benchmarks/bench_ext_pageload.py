"""Extension: page-load time with PIM-offloaded tiling/blitting."""

from repro.workloads.chrome.pageload import evaluate_page_load
from repro.workloads.chrome.pages import PAGES


def test_page_load(benchmark):
    results = benchmark.pedantic(
        lambda: [evaluate_page_load(p) for p in PAGES.values()],
        rounds=1, iterations=1,
    )
    print()
    for r in results:
        print(
            "%-16s load %6.1f ms -> %6.1f ms with PIM (-%.0f%%), kernels "
            "carry %.0f%% of load energy"
            % (r.page, r.cpu_time_s * 1e3, r.pim_time_s * 1e3,
               100 * r.load_time_reduction, 100 * r.kernel_share_of_load)
        )
        assert r.load_time_reduction > 0
