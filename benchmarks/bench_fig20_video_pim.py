"""Figure 20: video kernels, CPU-Only vs PIM-Core vs PIM-Acc."""

from repro.analysis.video_figures import fig20_video_pim


def test_fig20(benchmark, show):
    result = benchmark(fig20_video_pim)
    show(result)
    assert result.anchor_within("mean PIM-Acc energy reduction", 0.08)
