"""Extension: functional lossless frame compression backs the hardware
model's FRAME_COMPRESSION_FACTOR = 0.6 constant."""

from repro.workloads.vp9.framecompress import measure_compression_factor
from repro.workloads.vp9.hardware import FRAME_COMPRESSION_FACTOR
from repro.workloads.vp9.video import synthetic_video


def test_frame_compression_factor(benchmark):
    frames = synthetic_video(128, 128, 4, motion=2.0, noise=2.0, seed=3)
    factor = benchmark.pedantic(
        measure_compression_factor, args=(frames,), rounds=1, iterations=1
    )
    print(
        "\nmeasured factor %.2f vs hardware-model constant %.2f"
        % (factor, FRAME_COMPRESSION_FACTOR)
    )
    assert abs(factor - FRAME_COMPRESSION_FACTOR) < 0.2
