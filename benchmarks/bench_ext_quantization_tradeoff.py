"""Extension: float32 vs quantized vs quantized+PIM inference energy."""

from repro.workloads.tensorflow.float_baseline import quantization_tradeoff
from repro.workloads.tensorflow.models import resnet_v2_152


def test_quantization_tradeoff(benchmark):
    t = benchmark.pedantic(
        quantization_tradeoff, args=(resnet_v2_152(),), rounds=1, iterations=1
    )
    print(
        "\nfloat %.2f J | quantized %.2f J (-%.0f%%) | quantized+PIM %.2f J "
        "(-%.0f%%)"
        % (t.float_energy_j, t.quantized_energy_j, 100 * t.quantization_saving,
           t.quantized_pim_energy_j, 100 * t.pim_saving)
    )
    assert t.float_energy_j > t.quantized_energy_j > t.quantized_pim_energy_j
