"""Figure 4: ZRAM swap traffic during 50-tab switching."""

from repro.analysis.chrome_figures import fig04_zram_traffic


def test_fig04(benchmark, show):
    result = benchmark(fig04_zram_traffic)
    show(result)
    assert result.anchor_within("total swapped out (GB)", 0.40)
    assert result.anchor_within("total swapped in (GB)", 0.40)
