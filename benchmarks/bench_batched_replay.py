"""Config-batched sweep throughput: trace-per-config vs trace-once batch.

The headline perf metric for the batched columnar replay engine: the
end-to-end cost of a cache-geometry sweep.  The baseline is the
pre-batching figure/sensitivity path — every geometry re-traces the
workload kernel and replays it serially through ``replay_fast`` (cache)
and ``TimingSimulator.replay_fast`` (timing).  The batched path traces
the kernel once, materializes the columnar :class:`TraceArtifact`, and
evaluates every geometry in one :func:`replay_batch` /
:func:`timing_batch_for_socs` pass over the shared line runs.  Both
paths are checked bit-identical on every run before timing.

Run directly to record the numbers EXPERIMENTS.md's Performance section
is generated from::

    PYTHONPATH=src python benchmarks/bench_batched_replay.py

which rewrites ``benchmarks/BENCH_batched_replay.json`` with full-size
and quick-size measurements.  ``--quick`` is the CI perf-smoke mode: it
re-measures at the quick sizes and fails if any sweep's speedup fell
more than ``REGRESSION_FACTOR``x below the committed baseline (speedup,
not wall-clock, so the gate is machine-independent).  Under pytest the
module asserts the acceptance bar instead: a ≥5x geomean across the
full-size sweeps, with a looser per-sweep floor to absorb timer noise.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.config import KB, MB, CacheConfig, SocConfig, soc_cache_label
from repro.sim.artifact import TraceArtifact
from repro.sim.batch import sweep_batch
from repro.sim.cache import CacheHierarchy
from repro.sim.timing import TimingParameters, TimingSimulator
from repro.workloads.chrome.texture import compositing_trace
from repro.workloads.tensorflow.access_patterns import gemm_lhs_trace

JSON_PATH = Path(__file__).resolve().parent / "BENCH_batched_replay.json"

#: Acceptance bar for the full-size sweep geomean (pytest gate).
REQUIRED_SPEEDUP = 5.0
#: No individual sweep may fall below this, even with timer noise.  The
#: ≥5x acceptance bar is on the headline geomean; per-sweep timings on a
#: loaded machine wobble ±20% (gemm_packed has been observed at 4.6x and
#: 6.1x on back-to-back runs), so the per-sweep gate is deliberately
#: looser than the headline.
PER_SWEEP_FLOOR = 3.0
#: ``--quick`` fails when a sweep's measured speedup drops below
#: committed_speedup / REGRESSION_FACTOR.
REGRESSION_FACTOR = 2.0


def geometry_grid(quick: bool) -> list[SocConfig]:
    """The swept cache geometries: 8 for CI smoke, 16 for the record."""
    l1s = [(16 * KB, 2), (32 * KB, 4), (64 * KB, 4), (128 * KB, 8)]
    llcs = [(512 * KB, 8), (1 * MB, 8), (2 * MB, 8), (4 * MB, 16)]
    if quick:
        l1s = l1s[1:3]
    return [
        SocConfig(
            l1=CacheConfig(size_bytes=l1_bytes, associativity=l1_ways),
            l2=CacheConfig(
                size_bytes=llc_bytes,
                associativity=llc_ways,
                hit_latency_cycles=20,
            ),
        )
        for l1_bytes, l1_ways in l1s
        for llc_bytes, llc_ways in llcs
    ]


def _sweeps(quick: bool) -> list:
    """(name, build_trace) per swept workload; sizes shrink under --quick."""
    if quick:
        gemm = dict(m=96, k=256, n_blocks=3)
        tex = dict(width=256, height=128)
    else:
        gemm = dict(m=256, k=512, n_blocks=6)
        tex = dict(width=512, height=256)
    return [
        ("gemm_packed", lambda: gemm_lhs_trace(packed=True, **gemm)),
        ("gemm_unpacked", lambda: gemm_lhs_trace(packed=False, **gemm)),
        ("compositing_tiled", lambda: compositing_trace(tiled=True, **tex)),
    ]


def baseline_sweep(build_trace, socs, params) -> list:
    """The pre-batching path: every geometry re-traces and replays alone."""
    rows = []
    for soc in socs:
        trace = build_trace()
        stats = CacheHierarchy(soc).replay_fast(trace)
        timing = TimingSimulator(soc, params=params).replay_fast(trace)
        rows.append((stats, timing))
    return rows


def batched_sweep(build_trace, socs, params) -> list:
    """The trace-once path: one artifact, one set of shared batch passes."""
    artifact = TraceArtifact.from_trace(build_trace(), workload="bench")
    trace = artifact.trace()
    stats, timings = sweep_batch(trace, socs, params=params)
    return list(zip(stats, timings))


def measure(name, build_trace, socs, fast_reps: int = 3) -> dict:
    """Time one sweep both ways and verify they still agree exactly."""
    params = TimingParameters()
    if baseline_sweep(build_trace, socs, params) != batched_sweep(
        build_trace, socs, params
    ):
        raise AssertionError("%s: batched sweep diverged from serial" % name)
    baseline_s = _best(lambda: baseline_sweep(build_trace, socs, params), 1)
    batched_s = _best(lambda: batched_sweep(build_trace, socs, params), fast_reps)
    accesses = len(build_trace())
    return {
        "name": name,
        "configs": len(socs),
        "accesses": accesses,
        "baseline_s": baseline_s,
        "batched_s": batched_s,
        "baseline_points_per_s": len(socs) / baseline_s,
        "batched_points_per_s": len(socs) / batched_s,
        "speedup": baseline_s / batched_s,
    }


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _geomean(speedups) -> float:
    return float(np.exp(np.mean(np.log(speedups))))


def run(quick: bool) -> list:
    socs = geometry_grid(quick)
    return [measure(name, build, socs) for name, build in _sweeps(quick)]


def _print_rows(rows) -> None:
    for row in rows:
        print(
            "%-20s %2d configs  serial %8.3fs  batched %8.3fs  (%.1fx)"
            % (
                row["name"],
                row["configs"],
                row["baseline_s"],
                row["batched_s"],
                row["speedup"],
            )
        )
    print("headline speedup: %.1fx" % _geomean([r["speedup"] for r in rows]))


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_batched_sweep_meets_speedup_bar():
    rows = run(quick=False)  # raises on divergence
    headline = _geomean([r["speedup"] for r in rows])
    assert headline >= REQUIRED_SPEEDUP, (
        "headline speedup only %.1fx over per-config serial replay" % headline
    )
    for row in rows:
        assert row["speedup"] >= PER_SWEEP_FLOOR, (
            "%s sweep only %.1fx over per-config serial replay"
            % (row["name"], row["speedup"])
        )


def test_quick_sweeps_faster_than_serial():
    for row in run(quick=True):
        assert row["speedup"] > 1.0, (
            "%s batched sweep slower than serial (%.2fx)"
            % (row["name"], row["speedup"])
        )


def test_grid_labels_unique():
    labels = [soc_cache_label(s) for s in geometry_grid(quick=False)]
    assert len(set(labels)) == len(labels) == 16


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _check_regressions(rows) -> int:
    """Compare quick-size speedups against the committed baseline."""
    committed = {
        r["name"]: r for r in json.loads(JSON_PATH.read_text())["quick_sweeps"]
    }
    failures = []
    for row in rows:
        baseline = committed.get(row["name"])
        if baseline is None:
            continue  # new sweep, no baseline yet
        floor = baseline["speedup"] / REGRESSION_FACTOR
        if row["speedup"] < floor:
            failures.append(
                "%s: %.1fx, below %.1fx (committed %.1fx / %g)"
                % (
                    row["name"],
                    row["speedup"],
                    floor,
                    baseline["speedup"],
                    REGRESSION_FACTOR,
                )
            )
    for failure in failures:
        print("PERF REGRESSION %s" % failure)
    if not failures:
        print("no sweep regressed more than %gx vs baseline" % REGRESSION_FACTOR)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="perf-smoke mode: quick sizes, compare against the committed "
        "baseline instead of rewriting it",
    )
    args = parser.parse_args(argv)
    if args.quick:
        rows = run(quick=True)
        _print_rows(rows)
        return _check_regressions(rows)
    full_rows = run(quick=False)
    quick_rows = run(quick=True)
    record = {
        "bench": "batched_replay",
        "generated_by": "benchmarks/bench_batched_replay.py",
        "sweeps": full_rows,
        "quick_sweeps": quick_rows,
        "headline_speedup": _geomean([r["speedup"] for r in full_rows]),
    }
    with open(JSON_PATH, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    _print_rows(full_rows)
    print("wrote %s" % JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
