"""Robustness sweep: headline conclusions across the energy constants."""

from repro.analysis.sensitivity import breakeven_internal_ratio, sweep


def test_sensitivity_sweeps(benchmark):
    def run():
        return {
            p: sweep(p, scales=(0.5, 1.0, 2.0))
            for p in ("dram_energy", "internal_ratio", "cpu_epi")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for parameter, points in results.items():
        for point in points:
            print(
                "%-16s x%.2f: PIM-Acc mean -%4.1f%% (min -%4.1f%%)"
                % (
                    parameter,
                    point.scale,
                    100 * point.mean_pim_acc_energy_reduction,
                    100 * point.min_pim_acc_energy_reduction,
                )
            )
            assert point.pim_always_saves_energy


def test_breakeven(benchmark):
    breakeven = benchmark.pedantic(
        breakeven_internal_ratio, kwargs={"resolution": 0.5}, rounds=1,
        iterations=1,
    )
    print(
        "\ninternal-path break-even: %.1fx the calibrated energy "
        "(calibrated = 0.5x of off-chip per bit)" % breakeven
    )
    assert breakeven >= 1.5
