"""Scaling study: PIM benefit vs video resolution (HD -> 4K -> 8K).

The paper notes decoding one 4K frame moves 4.6x the data of an HD
frame; this bench extends the decoder characterization to 8K to show the
data-movement share -- and hence the PIM opportunity -- keeps growing
with resolution.
"""

import pytest

from repro.core.runner import ExperimentRunner
from repro.core.target import PimTarget
from repro.core.workload import characterize
from repro.workloads.vp9.profiles import (
    decoder_functions,
    profile_sub_pixel_interpolation,
)

RESOLUTIONS = {
    "HD": (1280, 720),
    "4K": (3840, 2160),
    "8K": (7680, 4320),
}


@pytest.mark.parametrize("name", list(RESOLUTIONS))
def test_decoder_scaling(benchmark, name):
    w, h = RESOLUTIONS[name]
    ch = benchmark.pedantic(
        characterize, args=("dec", decoder_functions(w, h, 10)),
        rounds=1, iterations=1,
    )
    print(
        "\n%s decode: movement %.1f%%, sub-pel share %.1f%%"
        % (name, 100 * ch.data_movement_fraction,
           100 * ch.energy_share("sub_pixel_interpolation"))
    )


def test_pim_benefit_grows_with_resolution():
    runner = ExperimentRunner()
    reductions = {}
    for name, (w, h) in RESOLUTIONS.items():
        target = PimTarget(
            "subpel_" + name,
            profile_sub_pixel_interpolation(w, h, 10),
            accelerator_key="sub_pixel_interpolation",
            invocations=10,
        )
        comparison = runner.engine.compare(target)
        reductions[name] = comparison.pim_acc_energy_reduction
        print(
            "%s: PIM-Acc energy reduction %.1f%%"
            % (name, 100 * comparison.pim_acc_energy_reduction)
        )
    # Per-byte behaviour is scale-free in the model; what grows is the
    # absolute energy at stake.  The reduction must not degrade at scale
    # (launch overheads amortize away).
    assert reductions["8K"] >= reductions["HD"] - 0.01
