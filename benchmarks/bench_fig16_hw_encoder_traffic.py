"""Figure 16: VP9 hardware encoder off-chip traffic."""

from repro.analysis.video_figures import fig16_hw_encoder_traffic


def test_fig16(benchmark, show):
    result = benchmark(fig16_hw_encoder_traffic)
    show(result)
    assert result.anchor_within("HD nocomp reference-frame share", 0.08)
