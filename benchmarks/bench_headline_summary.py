"""Headline averages: 62.7% movement; PIM-Core -49.1%; PIM-Acc -55.4%."""

from repro.analysis.headline import headline_summary


def test_headline(benchmark, show):
    result = benchmark.pedantic(headline_summary, rounds=1, iterations=1)
    show(result)
    assert result.anchor_within("avg data-movement fraction of system energy", 0.08)
    assert result.anchor_within("mean PIM-Acc energy reduction", 0.10)
