"""Figure 21: hardware codec energy with and without PIM/compression."""

from repro.analysis.video_figures import fig21_hw_codec_pim


def test_fig21(benchmark, show):
    result = benchmark(fig21_hw_codec_pim)
    show(result)
    assert result.anchors["decoder PIM-Acc nocomp beats baseline comp"][1] == 1.0
