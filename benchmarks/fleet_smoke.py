"""Fleet smoke: an elastic, authenticated fleet must match a serial run.

CI runs this as a standalone script::

    PYTHONPATH=src python benchmarks/fleet_smoke.py

It boots the whole distributed stack through the CLI the way an elastic
deployment would — gateway first with **zero** static workers, then two
single-slot HTTP workers that announce themselves with ``--register``,
every request signed with a shared ``REPRO_FLEET_SECRET`` — then
asserts:

* the gateway's member table reaches two alive registered workers;
* ``repro fleet status`` exits 0 against the elastic manifest;
* a ``cachesweep --fleet`` run is **byte-identical** on stdout to the
  same sweep run serially with ``--jobs 1``, even though one worker is
  gracefully drained (``repro fleet drain --url``) mid-run and exits 0
  — drain is the uncharged decommission path;
* a second fleet run with the shared gateway cache enabled answers from
  the cache (``fleet.cache.hits`` in its manifest) with byte-identical
  stdout — the promoted MemoCache short-circuits recomputation without
  changing the answer.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.fleet.wire import FleetTransportError, http_json  # noqa: E402

RECORD_PATH = REPO / "benchmarks" / "BENCH_fleet_smoke.json"
WORKLOAD = "chrome.compositing_linear"
SECRET = "fleet-smoke-shared-secret"


def _wait_for_port_file(path: Path, timeout_s: float = 30.0) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError("no port file at %s after %gs" % (path, timeout_s))


def _wait_members(gw_port: int, n: int, timeout_s: float = 30.0) -> None:
    """Poll the gateway's (signed) /status until ``n`` members are alive."""
    url = "http://127.0.0.1:%d/status" % gw_port
    deadline = time.monotonic() + timeout_s
    last = None
    while time.monotonic() < deadline:
        try:
            status, doc = http_json("GET", url, timeout=2.0, secret=SECRET)
        except FleetTransportError:
            time.sleep(0.05)
            continue
        if status == 200:
            last = doc
            alive = [w for w in doc.get("workers", []) if w.get("alive")]
            if len(alive) == n:
                return
        time.sleep(0.05)
    raise RuntimeError(
        "gateway never reported %d alive members; last: %r" % (n, last)
    )


def _counters(manifest_dir: Path) -> dict:
    return json.loads((manifest_dir / "manifest.json").read_text())["counters"]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as scratch:
        scratch = Path(scratch)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(scratch / "cache")
        env["REPRO_FLEET_SECRET"] = SECRET
        env.pop("REPRO_STRICT", None)
        env.pop("REPRO_FAULT_PLAN", None)
        procs = []

        def spawn(argv, log_name):
            log = (scratch / log_name).open("w")
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro"] + argv,
                cwd=REPO, env=env, stdout=log, stderr=subprocess.STDOUT,
            )
            procs.append(proc)
            return proc

        def run(argv, timeout=600):
            return subprocess.run(
                [sys.executable, "-m", "repro"] + argv,
                cwd=REPO, env=env, capture_output=True, text=True,
                timeout=timeout,
            )

        try:
            # Gateway first: an elastic manifest with no static workers.
            # Its fleet is whatever registers (port 0 is a placeholder
            # for its own bound address).
            manifest = scratch / "fleet.json"
            manifest.write_text(json.dumps({
                "workers": [],
                "gateway": {"host": "127.0.0.1", "port": 0},
                "lease_s": 5,
            }))
            gw_port_file = scratch / "gateway.port"
            spawn(
                ["fleet", "serve", "--fleet", str(manifest),
                 "--port", "0", "--port-file", str(gw_port_file),
                 "--cache-dir", str(scratch / "gateway-cache")],
                "gateway.log",
            )
            gw_port = _wait_for_port_file(gw_port_file)

            # Two workers join by announcing themselves — no static list.
            worker_procs, worker_ports = [], []
            for i in range(2):
                port_file = scratch / ("worker-%d.port" % i)
                proc = spawn(
                    ["fleet", "worker", "--port", "0",
                     "--port-file", str(port_file),
                     "--register", "http://127.0.0.1:%d" % gw_port],
                    "worker-%d.log" % i,
                )
                worker_procs.append(proc)
                worker_ports.append(_wait_for_port_file(port_file))
            _wait_members(gw_port, 2)

            # Clients only ever need the gateway's address.
            manifest.write_text(json.dumps({
                "workers": [],
                "gateway": {"host": "127.0.0.1", "port": gw_port},
                "lease_s": 5,
            }))

            status = run(["fleet", "status", "--fleet", str(manifest)])
            print(status.stdout)
            if status.returncode != 0:
                print(status.stderr, file=sys.stderr)
                print("FAIL: fleet status exited %d" % status.returncode)
                return 1

            # Bit-identity: serial local vs fleet-dispatched stdout, with
            # one worker gracefully drained while the fleet run is going.
            base = ["cachesweep", "--workload", WORKLOAD, "--no-cache",
                    "--max-retries", "3"]
            t0 = time.monotonic()
            local = run(base + ["--jobs", "1",
                                "--trace-dir", str(scratch / "local-traces")])
            local_s = time.monotonic() - t0
            t0 = time.monotonic()
            fleet_proc = subprocess.Popen(
                [sys.executable, "-m", "repro"] + base
                + ["--jobs", "2", "--fleet", str(manifest),
                   "--trace-dir", str(scratch / "fleet-traces")],
                cwd=REPO, env=env, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True,
            )
            time.sleep(1.0)
            drain = run(["fleet", "drain",
                         "--url", "http://127.0.0.1:%d" % worker_ports[0]])
            fleet_out, fleet_err = fleet_proc.communicate(timeout=600)
            fleet_s = time.monotonic() - t0
            if local.returncode != 0:
                print(local.stderr, file=sys.stderr)
                print("FAIL: local cachesweep exited %d" % local.returncode)
                return 1
            if fleet_proc.returncode != 0:
                print(fleet_err, file=sys.stderr)
                print("FAIL: fleet cachesweep exited %d"
                      % fleet_proc.returncode)
                return 1
            if drain.returncode != 0 or "draining" not in drain.stdout:
                print(drain.stdout + drain.stderr, file=sys.stderr)
                print("FAIL: fleet drain exited %d" % drain.returncode)
                return 1
            if fleet_out != local.stdout:
                print("FAIL: fleet sweep diverged from serial sweep")
                print("--- local ---\n%s" % local.stdout)
                print("--- fleet ---\n%s" % fleet_out)
                return 1
            # The drained worker finished its hand-off and exited 0 —
            # graceful decommission, not a crash.
            try:
                drained_rc = worker_procs[0].wait(timeout=30)
            except subprocess.TimeoutExpired:
                print("FAIL: drained worker never exited")
                return 1
            if drained_rc != 0:
                print("FAIL: drained worker exited %d" % drained_rc)
                return 1

            # Shared gateway cache: compute once, hit on the second run
            # (the surviving worker carries it).  The hit returns the
            # memoized document verbatim, so its stdout must be
            # byte-identical to the serial baseline; the counters prove
            # the data came from the gateway cache.
            cached = ["cachesweep", "--workload", WORKLOAD, "--jobs", "1",
                      "--fleet", str(manifest), "--max-retries", "3",
                      "--trace-dir", str(scratch / "fleet-traces")]
            warm = run(cached + ["--manifest", str(scratch / "warm-obs")])
            t0 = time.monotonic()
            hit = run(cached + ["--manifest", str(scratch / "hit-obs")])
            hit_s = time.monotonic() - t0
            for name, proc in (("warm", warm), ("hit", hit)):
                if proc.returncode != 0:
                    print(proc.stderr, file=sys.stderr)
                    print("FAIL: %s cached run exited %d"
                          % (name, proc.returncode))
                    return 1
            if _counters(scratch / "warm-obs").get("fleet.cache.puts", 0) < 1:
                print("FAIL: warm run never published to the gateway cache")
                return 1
            if _counters(scratch / "hit-obs").get("fleet.cache.hits", 0) < 1:
                print("FAIL: second run did not hit the gateway cache")
                return 1
            hit_stdout = "".join(
                line for line in hit.stdout.splitlines(keepends=True)
                if not line.startswith("wrote manifest ")
            )
            if hit_stdout != local.stdout:
                print("FAIL: cached answer diverged from serial answer")
                print("--- local ---\n%s" % local.stdout)
                print("--- cached ---\n%s" % hit_stdout)
                return 1

            record = {
                "workers": 2,
                "registered": True,
                "gateway": True,
                "authenticated": True,
                "drained_mid_run": 1,
                "workload": WORKLOAD,
                "configs": sum(
                    1 for line in local.stdout.splitlines()
                    if line.startswith("  l1=")
                ),
                "serial_s": round(local_s, 3),
                "fleet_s": round(fleet_s, 3),
                "cache_hit_s": round(hit_s, 3),
                "identical": True,
            }
            RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
            print(
                "fleet smoke OK: elastic 2-worker fleet (registered, "
                "HMAC-signed), one worker drained mid-run (exit 0), fleet "
                "stdout byte-identical to serial, gateway cache hit on "
                "rerun (serial %.2fs, fleet %.2fs, cached %.2fs; "
                "record -> %s)"
                % (local_s, fleet_s, hit_s, RECORD_PATH.name)
            )
        finally:
            # SIGTERM now *drains* workers: idle ones exit promptly, the
            # gateway just shuts down.
            for proc in procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
            for proc in procs:
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
    return 0


if __name__ == "__main__":
    sys.exit(main())
