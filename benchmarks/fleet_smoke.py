"""Fleet smoke: a loopback gateway + worker fleet must match a serial run.

CI runs this as a standalone script::

    PYTHONPATH=src python benchmarks/fleet_smoke.py

It boots the whole distributed stack through the CLI — two single-slot
HTTP workers (``repro fleet worker``), a gateway over them (``repro
fleet serve``) — then asserts:

* ``repro fleet status`` exits 0 with every worker alive;
* a ``cachesweep --fleet`` run over the fleet is **byte-identical** on
  stdout to the same sweep run serially with ``--jobs 1`` — the
  bit-identity contract at the CLI level;
* a second fleet run with the shared gateway cache enabled answers from
  the cache (``fleet.cache.hits`` in its manifest) with byte-identical
  stdout — the promoted MemoCache short-circuits recomputation without
  changing the answer.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO / "benchmarks" / "BENCH_fleet_smoke.json"
WORKLOAD = "chrome.compositing_linear"


def _wait_for_port_file(path: Path, timeout_s: float = 30.0) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text().strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise RuntimeError("no port file at %s after %gs" % (path, timeout_s))


def _wait_healthy(port: int, timeout_s: float = 30.0) -> None:
    url = "http://127.0.0.1:%d/health" % port
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=2.0) as response:
                if json.loads(response.read())["ok"]:
                    return
        except Exception:
            pass
        time.sleep(0.05)
    raise RuntimeError("no /health from port %d after %gs" % (port, timeout_s))


def _counters(manifest_dir: Path) -> dict:
    return json.loads((manifest_dir / "manifest.json").read_text())["counters"]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as scratch:
        scratch = Path(scratch)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(scratch / "cache")
        env.pop("REPRO_STRICT", None)
        env.pop("REPRO_FAULT_PLAN", None)
        procs = []

        def spawn(argv, log_name):
            log = (scratch / log_name).open("w")
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro"] + argv,
                cwd=REPO, env=env, stdout=log, stderr=subprocess.STDOUT,
            )
            procs.append(proc)
            return proc

        def run(argv, timeout=600):
            return subprocess.run(
                [sys.executable, "-m", "repro"] + argv,
                cwd=REPO, env=env, capture_output=True, text=True,
                timeout=timeout,
            )

        try:
            # Two real single-slot workers on ephemeral ports.
            worker_ports = []
            for i in range(2):
                port_file = scratch / ("worker-%d.port" % i)
                spawn(
                    ["fleet", "worker", "--port", "0",
                     "--port-file", str(port_file)],
                    "worker-%d.log" % i,
                )
                worker_ports.append(_wait_for_port_file(port_file))
            for port in worker_ports:
                _wait_healthy(port)

            # A gateway over them, then the full manifest clients use.
            workers_manifest = scratch / "workers.json"
            workers_manifest.write_text(json.dumps({
                "workers": [
                    {"host": "127.0.0.1", "port": port}
                    for port in worker_ports
                ],
            }))
            gw_port_file = scratch / "gateway.port"
            spawn(
                ["fleet", "serve", "--fleet", str(workers_manifest),
                 "--port", "0", "--port-file", str(gw_port_file),
                 "--cache-dir", str(scratch / "gateway-cache")],
                "gateway.log",
            )
            gw_port = _wait_for_port_file(gw_port_file)
            _wait_healthy(gw_port)
            manifest = scratch / "fleet.json"
            manifest.write_text(json.dumps({
                "workers": [
                    {"host": "127.0.0.1", "port": port}
                    for port in worker_ports
                ],
                "gateway": {"host": "127.0.0.1", "port": gw_port},
            }))

            status = run(["fleet", "status", "--fleet", str(manifest)])
            print(status.stdout)
            if status.returncode != 0:
                print(status.stderr, file=sys.stderr)
                print("FAIL: fleet status exited %d" % status.returncode)
                return 1

            # Bit-identity: serial local vs fleet-dispatched stdout.
            base = ["cachesweep", "--workload", WORKLOAD, "--no-cache",
                    "--max-retries", "3"]
            t0 = time.monotonic()
            local = run(base + ["--jobs", "1",
                                "--trace-dir", str(scratch / "local-traces")])
            local_s = time.monotonic() - t0
            t0 = time.monotonic()
            fleet = run(base + ["--jobs", "2", "--fleet", str(manifest),
                                "--trace-dir", str(scratch / "fleet-traces")])
            fleet_s = time.monotonic() - t0
            for name, proc in (("local", local), ("fleet", fleet)):
                if proc.returncode != 0:
                    print(proc.stderr, file=sys.stderr)
                    print("FAIL: %s cachesweep exited %d"
                          % (name, proc.returncode))
                    return 1
            if fleet.stdout != local.stdout:
                print("FAIL: fleet sweep diverged from serial sweep")
                print("--- local ---\n%s" % local.stdout)
                print("--- fleet ---\n%s" % fleet.stdout)
                return 1

            # Shared gateway cache: compute once, hit on the second run.
            # The hit returns the memoized document verbatim, so its
            # stdout must be byte-identical to the serial baseline; the
            # counters prove the data came from the gateway cache.
            cached = ["cachesweep", "--workload", WORKLOAD, "--jobs", "2",
                      "--fleet", str(manifest), "--max-retries", "3",
                      "--trace-dir", str(scratch / "fleet-traces")]
            warm = run(cached + ["--manifest", str(scratch / "warm-obs")])
            t0 = time.monotonic()
            hit = run(cached + ["--manifest", str(scratch / "hit-obs")])
            hit_s = time.monotonic() - t0
            for name, proc in (("warm", warm), ("hit", hit)):
                if proc.returncode != 0:
                    print(proc.stderr, file=sys.stderr)
                    print("FAIL: %s cached run exited %d"
                          % (name, proc.returncode))
                    return 1
            if _counters(scratch / "warm-obs").get("fleet.cache.puts", 0) < 1:
                print("FAIL: warm run never published to the gateway cache")
                return 1
            if _counters(scratch / "hit-obs").get("fleet.cache.hits", 0) < 1:
                print("FAIL: second run did not hit the gateway cache")
                return 1
            hit_stdout = "".join(
                line for line in hit.stdout.splitlines(keepends=True)
                if not line.startswith("wrote manifest ")
            )
            if hit_stdout != local.stdout:
                print("FAIL: cached answer diverged from serial answer")
                print("--- local ---\n%s" % local.stdout)
                print("--- cached ---\n%s" % hit_stdout)
                return 1

            record = {
                "workers": 2,
                "gateway": True,
                "workload": WORKLOAD,
                "configs": sum(
                    1 for line in local.stdout.splitlines()
                    if line.startswith("  l1=")
                ),
                "serial_s": round(local_s, 3),
                "fleet_s": round(fleet_s, 3),
                "cache_hit_s": round(hit_s, 3),
                "identical": True,
            }
            RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
            print(
                "fleet smoke OK: 2 workers + gateway, fleet stdout "
                "byte-identical to serial, gateway cache hit on rerun "
                "(serial %.2fs, fleet %.2fs, cached %.2fs; record -> %s)"
                % (local_s, fleet_s, hit_s, RECORD_PATH.name)
            )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
    return 0


if __name__ == "__main__":
    sys.exit(main())
