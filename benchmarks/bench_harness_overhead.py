"""Harness overhead: what each instrumentation layer costs at replay time.

The replay engine sits under several optional layers added across PRs —
observability counters/spans (PR 3), strict validation invariants
(PR 4), and resilient execution with retries (PR 5).  Each is free to
*enable*, but not free to *run*: counters publish per replay, strict
mode re-derives conservation checks, and ``ResilientMap`` adds per-item
bookkeeping.  This benchmark measures replay throughput with the layers
stacked one at a time, so a regression in any layer's overhead is
visible as data rather than folklore:

* ``bare``       -- ``CacheHierarchy.replay_fast`` with no recorder active
* ``obs``        -- the same replay inside ``recording()``
* ``validate``   -- ``strict=True`` (invariant + conservation checks)
* ``obs_validate`` -- both layers together
* ``resilience`` -- the replay wrapped in a serial ``ResilientMap``

This is a measurement-only benchmark: there is no speedup gate, because
the acceptable overhead is a judgement call that belongs in review, not
a hard threshold that belongs in CI.  The pytest entry point only
asserts that every layer produces bit-identical statistics — the layers
must observe, never perturb.

Run directly to rewrite ``benchmarks/BENCH_harness_overhead.json``::

    PYTHONPATH=src python benchmarks/bench_harness_overhead.py
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.config import SocConfig
from repro.core.resilience import ResilientMap, RetryPolicy
from repro.obs import recording
from repro.sim.cache import CacheHierarchy
from repro.workloads.chrome.texture import compositing_trace
from repro.workloads.tensorflow.access_patterns import gemm_lhs_trace

JSON_PATH = Path(__file__).resolve().parent / "BENCH_harness_overhead.json"


def _workloads(quick: bool) -> list:
    if quick:
        gemm = dict(m=96, k=256, n_blocks=3)
        tex = dict(width=256, height=128)
    else:
        gemm = dict(m=256, k=512, n_blocks=6)
        tex = dict(width=512, height=256)
    return [
        ("gemm_packed", lambda: gemm_lhs_trace(packed=True, **gemm)),
        ("compositing_tiled", lambda: compositing_trace(tiled=True, **tex)),
    ]


def _bare(soc, trace):
    return CacheHierarchy(soc).replay_fast(trace)


def _obs(soc, trace):
    with recording():
        return CacheHierarchy(soc).replay_fast(trace)


def _validate(soc, trace):
    return CacheHierarchy(soc).replay_fast(trace, strict=True)


def _obs_validate(soc, trace):
    with recording():
        return CacheHierarchy(soc).replay_fast(trace, strict=True)


def _resilience(soc, trace):
    values, failures = ResilientMap(
        lambda t: CacheHierarchy(soc).replay_fast(t),
        [trace],
        names=["replay"],
        policy=RetryPolicy(max_attempts=2, backoff_base_s=0.0, jitter=0.0),
    ).run()
    if failures:
        raise failures[0].error
    return values[0]


#: (label, runner) in stacking order; ``bare`` must stay first — every
#: other layer's overhead is reported relative to it.
LAYERS = [
    ("bare", _bare),
    ("obs", _obs),
    ("validate", _validate),
    ("obs_validate", _obs_validate),
    ("resilience", _resilience),
]


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(name, build_trace, reps: int = 5) -> dict:
    """Per-layer replay throughput for one workload trace."""
    soc = SocConfig()
    trace = build_trace()
    # The layers must not perturb the model before we time them.
    expected = _bare(soc, trace)
    for label, runner in LAYERS[1:]:
        if runner(soc, trace) != expected:
            raise AssertionError("%s: %s layer changed replay stats" % (name, label))
    accesses = len(trace)
    layers = {}
    bare_s = None
    for label, runner in LAYERS:
        seconds = _best(lambda: runner(soc, trace), reps)
        if bare_s is None:
            bare_s = seconds
        layers[label] = {
            "seconds": seconds,
            "accesses_per_s": accesses / seconds,
            "overhead_vs_bare": seconds / bare_s - 1.0,
        }
    return {"name": name, "accesses": accesses, "layers": layers}


def run(quick: bool) -> list:
    return [measure(name, build) for name, build in _workloads(quick)]


def _print_rows(rows) -> None:
    for row in rows:
        print("%s (%d accesses)" % (row["name"], row["accesses"]))
        for label, data in row["layers"].items():
            print(
                "  %-12s %8.3fs  %12.0f acc/s  (+%.1f%%)"
                % (
                    label,
                    data["seconds"],
                    data["accesses_per_s"],
                    100.0 * data["overhead_vs_bare"],
                )
            )


# ----------------------------------------------------------------------
# pytest entry point: layers observe, never perturb
# ----------------------------------------------------------------------

def test_layers_do_not_perturb_replay():
    soc = SocConfig()
    for name, build in _workloads(quick=True):
        trace = build()
        expected = _bare(soc, trace)
        for label, runner in LAYERS[1:]:
            assert runner(soc, trace) == expected, (name, label)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small traces, print only (does not rewrite the JSON record)",
    )
    args = parser.parse_args(argv)
    rows = run(quick=args.quick)
    _print_rows(rows)
    if not args.quick:
        record = {
            "bench": "harness_overhead",
            "generated_by": "benchmarks/bench_harness_overhead.py",
            "workloads": rows,
        }
        with open(JSON_PATH, "w") as f:
            json.dump(record, f, indent=2)
            f.write("\n")
        print("wrote %s" % JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
