"""Figure 15: VP9 software encoder energy by function (HD)."""

from repro.analysis.video_figures import fig15_sw_encoder_energy


def test_fig15(benchmark, show):
    result = benchmark(fig15_sw_encoder_energy)
    show(result)
    assert result.anchor_within("motion estimation share", 0.08)
