"""Fault-injection campaign driver (validation-layer benchmark).

Times a deterministic, seeded fuzz campaign against the validation
layer: random and mutated LZO streams through both decompressor paths,
and poisoned values through the config constructors.  The assertions
are the point — nothing may escape with anything but a clean
``ValueError``/``ConfigError`` — and the timing catches rejection-cost
regressions (a varint bomb must be refused in microseconds, not after
a multi-gigabyte allocation attempt).

Run with ``pytest benchmarks/bench_validation_fuzz.py -s``.
"""

import numpy as np

from repro.config import CacheConfig
from repro.validate import ConfigError
from repro.workloads.chrome import lzo

SEED = 20180324  # deterministic campaign; same inputs every run
STREAMS = 60
CONFIGS = 120


def _make_inputs(rng):
    """Half pure garbage, half single-byte corruptions of a valid stream."""
    valid, _ = lzo.compress(
        bytes(rng.integers(0, 4, 512, dtype=np.uint8).tobytes()) * 4
    )
    inputs = []
    for i in range(STREAMS):
        if i % 2:
            size = int(rng.integers(1, 256))
            inputs.append(rng.integers(0, 256, size, dtype=np.uint8).tobytes())
        else:
            mutated = bytearray(valid)
            for _ in range(3):
                mutated[int(rng.integers(0, len(mutated)))] = int(
                    rng.integers(0, 256)
                )
            inputs.append(bytes(mutated))
    return inputs


def _decoder_campaign(inputs):
    outcomes = {"ok": 0, "rejected": 0}
    # Shrink the expansion cap: a mutated stream may legally demand a
    # near-cap expansion, and the campaign times rejection, not copying.
    previous = lzo.MAX_OUTPUT_BYTES
    lzo.MAX_OUTPUT_BYTES = 1 << 16
    try:
        for data in inputs:
            for fast in (True, False):
                try:
                    lzo.decompress(data, fast=fast)
                    outcomes["ok"] += 1
                except ValueError:
                    outcomes["rejected"] += 1
    finally:
        lzo.MAX_OUTPUT_BYTES = previous
    return outcomes


def _config_campaign(rng):
    poison = [0, -1, 3, 48, 1 << 20, None]
    outcomes = {"ok": 0, "rejected": 0}
    for _ in range(CONFIGS):
        kwargs = dict(
            size_bytes=int(rng.integers(-64, 1 << 16)),
            associativity=int(rng.integers(-2, 16)),
            line_bytes=poison[int(rng.integers(0, len(poison)))],
        )
        try:
            CacheConfig(**kwargs)
            outcomes["ok"] += 1
        except ConfigError:
            outcomes["rejected"] += 1
    return outcomes


def test_decoder_fuzz_campaign(benchmark):
    inputs = _make_inputs(np.random.default_rng(SEED))
    outcomes = benchmark(_decoder_campaign, inputs)
    assert outcomes["ok"] + outcomes["rejected"] == 2 * STREAMS
    assert outcomes["rejected"] > 0  # the campaign does exercise rejection
    print("\ndecoder campaign: %(ok)d accepted, %(rejected)d rejected" % outcomes)


def test_config_fuzz_campaign(benchmark):
    outcomes = benchmark(_config_campaign, np.random.default_rng(SEED))
    assert outcomes["ok"] + outcomes["rejected"] == CONFIGS
    assert outcomes["rejected"] > outcomes["ok"]  # poison dominates
    print("\nconfig campaign: %(ok)d accepted, %(rejected)d rejected" % outcomes)


def test_varint_bomb_rejection_is_cheap(benchmark):
    extra = bytearray()
    lzo._emit_varint(1 << 42, extra)  # ~4 TB match length
    bomb = (
        bytes([0x00, 0x41])
        + bytes([0x80 | 127]) + bytes(extra)
        + bytes([0x01, 0x00])
    )

    def reject():
        try:
            lzo.decompress(bomb)
        except ValueError as exc:
            return str(exc)
        raise AssertionError("bomb was not rejected")

    message = benchmark(reject)
    assert "expands output beyond" in message
