"""Benchmark harness configuration.

Every figure/table of the paper has one benchmark module that (a) times
the regeneration of the experiment with pytest-benchmark and (b) prints
the regenerated rows plus the paper-vs-measured anchors (run with ``-s``
to see them).
"""

import pytest


@pytest.fixture
def show():
    """Print a FigureResult's rendering (visible with pytest -s)."""

    def _show(result):
        print()
        print(result.render_text())
        return result

    return _show
