"""Figure 6: TensorFlow Mobile energy breakdown, four networks."""

from repro.analysis.tensorflow_figures import fig06_tf_energy


def test_fig06(benchmark, show):
    result = benchmark(fig06_tf_energy)
    show(result)
    assert result.anchor_within("avg packing+quantization energy share", 0.10)
