"""Figure 12: VP9 hardware decoder off-chip traffic."""

from repro.analysis.video_figures import fig12_hw_decoder_traffic


def test_fig12(benchmark, show):
    result = benchmark(fig12_hw_decoder_traffic)
    show(result)
    assert result.anchor_within("HD nocomp ref-frame traffic share", 0.08)
