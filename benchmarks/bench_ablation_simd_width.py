"""Ablation: PIM-core SIMD width (the paper picks 4 empirically).

Sweeps width 1/2/4/8 over the browser kernels and reports the mean
PIM-Core speedup and energy reduction.  The paper's choice of 4 should
sit at the knee: width 1 loses most of the benefit, width 8 adds little
(the kernels become memory-bound before compute stops mattering).
"""


import pytest

from repro.config import PimCoreConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.workloads.chrome.targets import browser_pim_targets


def sweep_width(width: int):
    system = SystemConfig(pim_core=PimCoreConfig(simd_width=width))
    return ExperimentRunner(system).evaluate(browser_pim_targets())


@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_simd_width(benchmark, width):
    result = benchmark.pedantic(sweep_width, args=(width,), rounds=1, iterations=1)
    print(
        "\nSIMD width %d: mean PIM-Core speedup %.2f, energy reduction %.1f%%"
        % (
            width,
            result.mean_pim_core_speedup,
            100 * result.mean_pim_core_energy_reduction,
        )
    )


def test_width_four_is_the_smallest_sufficient(show):
    """Why the paper picks width 4: it is the smallest SIMD width at
    which *every* browser kernel satisfies Section 3.2's no-performance-
    loss criterion; narrower units fail it, and the memory-bound kernels
    (texture tiling) see diminishing returns beyond 4."""
    results = {w: sweep_width(w) for w in (1, 2, 4, 8)}
    min_speedup = {
        w: min(c.pim_core_speedup for c in r.comparisons)
        for w, r in results.items()
    }
    assert min_speedup[1] < 1.0
    assert min_speedup[2] < 1.0
    assert min_speedup[4] >= 1.0
    assert min_speedup[8] >= 1.0
    # Diminishing returns past 4 for the memory-bound tiling kernel.
    tiling = {
        w: r.by_name("texture_tiling").pim_core_speedup for w, r in results.items()
    }
    assert tiling[8] - tiling[4] < tiling[4] - tiling[2]
