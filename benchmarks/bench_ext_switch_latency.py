"""Extension: user-facing tab-switch latency with PIM decompression."""

from repro.workloads.chrome.zram import switch_latency


def test_switch_latency(benchmark):
    latency = benchmark.pedantic(switch_latency, rounds=1, iterations=1)
    print(
        "\nswitch to a compressed 150 MB tab: CPU %.0f ms, PIM-Core %.0f ms, "
        "PIM-Acc %.0f ms (%.2fx)"
        % (latency.cpu_only_s * 1e3, latency.pim_core_s * 1e3,
           latency.pim_acc_s * 1e3, latency.pim_acc_speedup)
    )
    assert latency.pim_acc_speedup > 1.2
