"""Table 1: evaluated system configuration."""

from repro.analysis.headline import table1_configuration


def test_table1(benchmark, show):
    result = benchmark(table1_configuration)
    show(result)
    assert len(result.rows) == 4
