"""Extension: rate-distortion comparison of encoder configurations."""

from repro.workloads.vp9.rd import bd_psnr, rd_curve
from repro.workloads.vp9.video import synthetic_video


def test_rd_split_vs_whole(benchmark):
    clip = synthetic_video(64, 64, 5, motion=2.5, objects=3, seed=13)

    def run():
        with_split = rd_curve(clip, qsteps=(8, 24, 64), allow_split=True)
        without = rd_curve(clip, qsteps=(8, 24, 64), allow_split=False)
        return with_split, without

    with_split, without = benchmark.pedantic(run, rounds=1, iterations=1)
    delta = bd_psnr(without, with_split)
    print("\nRD points (split enabled):")
    for p in with_split:
        print("  q=%3.0f  %.3f bpp  %.1f dB" % (p.qstep, p.bits_per_pixel, p.psnr_db))
    print("BD-PSNR of 8x8 split vs whole-block: %+.2f dB" % delta)
    assert delta > -0.3
