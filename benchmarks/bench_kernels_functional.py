"""Throughput benchmarks of the functional kernel implementations.

These time the actual Python/numpy kernels (not the analytic models):
texture tiling, color blitting, LZO compression, quantized GEMM, and the
full VP9-class codec loop.  They serve as regression guards on the
functional substrate the characterization is validated against.
"""

import numpy as np
import pytest

from repro.workloads.chrome.blitter import alpha_blend
from repro.workloads.chrome.lzo import compress, decompress
from repro.workloads.chrome.synthetic import generate_web_memory
from repro.workloads.chrome.texture import linear_to_tiled, tiled_to_linear
from repro.workloads.tensorflow.gemm import quantized_gemm
from repro.workloads.tensorflow.quantization import quantize_tensor
from repro.workloads.vp9.encoder import encode_video
from repro.workloads.vp9.decoder import decode_video
from repro.workloads.vp9.video import synthetic_video


@pytest.fixture(scope="module")
def bitmap():
    rng = np.random.default_rng(0)
    return rng.integers(0, 256, size=(512, 512, 4), dtype=np.uint8)


def test_texture_tiling_throughput(benchmark, bitmap):
    tiled = benchmark(linear_to_tiled, bitmap)
    assert tiled.num_tiles == (512 // 32) ** 2


def test_texture_untiling_throughput(benchmark, bitmap):
    tiled = linear_to_tiled(bitmap)
    restored = benchmark(tiled_to_linear, tiled)
    assert restored.shape == bitmap.shape


def test_alpha_blend_throughput(benchmark, bitmap):
    rng = np.random.default_rng(1)
    src = rng.integers(0, 256, size=(512, 512, 4), dtype=np.uint8)

    def blend():
        dst = bitmap.copy()
        return alpha_blend(dst, src, 0, 0)

    stats = benchmark(blend)
    assert stats.pixels_blended == 512 * 512


def test_lzo_compress_throughput(benchmark):
    data = generate_web_memory(128 * 1024, seed=2)
    compressed, stats = benchmark(compress, data)
    assert stats.ratio > 1.5


def test_lzo_decompress_throughput(benchmark):
    data = generate_web_memory(128 * 1024, seed=2)
    compressed, _ = compress(data)
    restored, _ = benchmark(decompress, compressed)
    assert restored == data


def test_quantized_gemm_throughput(benchmark):
    rng = np.random.default_rng(3)
    a = quantize_tensor(rng.uniform(-1, 1, size=(128, 256)).astype(np.float32))
    b = quantize_tensor(rng.uniform(-1, 1, size=(256, 64)).astype(np.float32))
    acc = benchmark(quantized_gemm, a, b)
    assert acc.shape == (128, 64)


def test_vp9_encode_throughput(benchmark):
    clip = synthetic_video(64, 64, 3, motion=2.0, seed=5)
    encoded, encoder = benchmark.pedantic(
        encode_video, args=(clip,), rounds=1, iterations=1
    )
    assert len(encoded) == 3


def test_vp9_decode_throughput(benchmark):
    clip = synthetic_video(64, 64, 3, motion=2.0, seed=5)
    encoded, _ = encode_video(clip)
    decoded, _ = benchmark.pedantic(
        decode_video, args=(encoded,), rounds=1, iterations=1
    )
    assert len(decoded) == 3
