"""Chaos smoke: SIGKILL a real pool worker mid-sweep; the sweep must survive.

CI runs this as a standalone script::

    PYTHONPATH=src python benchmarks/chaos_smoke.py

It schedules a ``kill`` fault (via ``REPRO_FAULT_PLAN``) for one target
of a parallel ``python -m repro evaluate --jobs 4`` run, then asserts:

* the process exits 0 — a murdered worker is a retry, not a failure;
* the manifest lists every target — the sweep is complete, not degraded;
* ``core.resilience.retries`` is present and positive — the crash was
  actually absorbed by the resilience layer, not silently missed.
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
#: The chrome sweep's targets; the fault hits one, all must survive.
EXPECTED_TARGETS = [
    "texture_tiling", "color_blitting", "compression", "decompression"
]
VICTIM = "color_blitting"


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as scratch:
        scratch = Path(scratch)
        plan = scratch / "plan.json"
        plan.write_text(json.dumps({"faults": {VICTIM: ["kill"]}}))
        manifest_dir = scratch / "manifest"
        env = dict(os.environ)
        env["REPRO_FAULT_PLAN"] = str(plan)
        env["PYTHONPATH"] = str(REPO / "src")
        env.pop("REPRO_STRICT", None)  # a retried crash is not a quarantine
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "evaluate",
                "--workload", "chrome", "--jobs", "4",
                "--max-retries", "3",
                "--manifest", str(manifest_dir),
            ],
            cwd=REPO, env=env, capture_output=True, text=True, timeout=600,
        )
        print(proc.stdout)
        if proc.returncode != 0:
            print(proc.stderr, file=sys.stderr)
            print("FAIL: evaluate exited %d" % proc.returncode)
            return 1
        manifest = json.loads((manifest_dir / "manifest.json").read_text())
        results = manifest["results"]
        missing = [t for t in EXPECTED_TARGETS if t not in results["targets"]]
        if missing:
            print("FAIL: sweep lost targets %s" % missing)
            return 1
        if results.get("degraded"):
            print("FAIL: sweep degraded; failures=%r" % results["failures"])
            return 1
        retries = manifest["counters"].get("core.resilience.retries", 0)
        if retries < 1:
            print("FAIL: no retry recorded — was the worker even killed?")
            return 1
        print(
            "chaos smoke OK: %d target(s), %d retrie(s), degraded=%s"
            % (len(results["targets"]), retries, results.get("degraded"))
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
