"""Ablation: GPU rasterization as an alternative to PIM texture tiling.

Section 4.2.2: rasterizing directly on the GPU avoids texture tiling
altogether, but the GPU's wide SIMT units rasterize fonts/small shapes
poorly -- page load time grows by up to 24.9% on text-heavy pages, which
is why Chrome keeps CPU rasterization.  We model GPU rasterization as a
raster-time multiplier on the text-heavy (blend-dominated) share of the
page and compare against CPU raster + PIM tiling.
"""

from repro.core.offload import OffloadEngine
from repro.workloads.chrome.pages import PAGES
from repro.workloads.chrome.targets import texture_tiling_target

#: GPU slowdown on text/small-shape rasterization (the paper observes up
#: to a 24.9% *page-load* penalty, implying a >2x raster-stage slowdown
#: on text content).
GPU_TEXT_PENALTY = 2.2


def compare_for_page(name: str):
    page = PAGES[name]
    engine = OffloadEngine()
    raster = engine.cpu_model.run(page.blitting_profile())
    tiling_cpu = engine.cpu_model.run(page.tiling_profile())
    tiling_pim = engine.run_pim_acc(
        texture_tiling_target(
            int(page.raster_pixels ** 0.5), int(page.raster_pixels ** 0.5)
        )
    )
    text_share = page.blend_fraction
    gpu_raster_time = raster.time_s * (
        (1 - text_share) * 0.4 + text_share * GPU_TEXT_PENALTY
    )
    cpu_pim_time = raster.time_s + tiling_pim.time_s
    gpu_time = gpu_raster_time  # no tiling needed on the GPU path
    cpu_only_time = raster.time_s + tiling_cpu.time_s
    return cpu_only_time, cpu_pim_time, gpu_time


def test_gpu_raster_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: {name: compare_for_page(name) for name in PAGES},
        rounds=1, iterations=1,
    )
    print()
    for name, (cpu, pim, gpu) in rows.items():
        print(
            "%-16s cpu-only %.2f ms | cpu+PIM %.2f ms | gpu-raster %.2f ms"
            % (name, cpu * 1e3, pim * 1e3, gpu * 1e3)
        )
    # On the most text-heavy page, CPU raster + PIM tiling beats GPU
    # rasterization -- the paper's argument for PIM over GPU raster.
    cpu, pim, gpu = rows["Google Docs"]
    assert pim < gpu
    assert pim < cpu
