"""Figure 11: VP9 software decoder energy by hardware component."""

from repro.analysis.video_figures import fig11_sw_decoder_components


def test_fig11(benchmark, show):
    result = benchmark(fig11_sw_decoder_components)
    show(result)
    assert result.anchor_within("data-movement fraction of decoder energy", 0.08)
