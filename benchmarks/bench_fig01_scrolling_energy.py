"""Figure 1: energy breakdown for page scrolling across six pages."""

from repro.analysis.chrome_figures import fig01_scrolling_energy


def test_fig01(benchmark, show):
    result = benchmark(fig01_scrolling_energy)
    show(result)
    assert result.anchor_within(
        "avg tiling+blitting share of scrolling energy", 0.10
    )
