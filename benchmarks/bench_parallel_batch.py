"""Multicore sweep throughput: single-process batched vs sharded workers.

The headline perf metric for the parallel shard engine: the end-to-end
cost of a cache-geometry sweep over one on-disk trace artifact.  The
baseline is PR 6's single-process config-batched path —
:class:`ConfigSweep` with ``jobs=1``, one ``sweep_batch`` pass over the
whole grid.  The parallel path shards the same grid across worker
processes (``jobs=N``); every worker memory-maps the same artifact
(nothing is pickled) and runs its shard through the identical
pour-and-finish helpers, so both paths are checked bit-identical on
every run before timing.

Run directly to record the numbers EXPERIMENTS.md's parallel-throughput
section is generated from::

    PYTHONPATH=src python benchmarks/bench_parallel_batch.py

which rewrites ``benchmarks/BENCH_parallel_batch.json`` with full-size
and quick-size measurements plus the host's ``cpu_count`` — speedup is
a function of cores, so the record keeps the machine's shape next to
its numbers.  ``--quick`` is the CI perf-smoke mode: it re-measures at
the quick sizes and fails if any sweep's speedup fell more than
``REGRESSION_FACTOR``x below the committed baseline; the comparison is
skipped (with a note) when the current host has fewer cores than the
recording host, because a speedup floor measured on more cores than you
have is not a regression signal.  Under pytest the module asserts the
acceptance bar instead: a ≥3x geomean over single-process batched on a
4+-core host (skipped below 4 cores — the parallel path cannot beat
3x without cores to run on).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.config import KB, MB, CacheConfig, SocConfig, soc_cache_label
from repro.core.runner import ConfigSweep
from repro.sim.artifact import TraceArtifact
from repro.sim.timing import TimingParameters
from repro.sim.trace import MemoryTrace
from repro.workloads.chrome.texture import compositing_trace
from repro.workloads.tensorflow.access_patterns import gemm_lhs_trace

JSON_PATH = Path(__file__).resolve().parent / "BENCH_parallel_batch.json"

#: Acceptance bar for the full-size sweep geomean (pytest gate, 4+ cores).
REQUIRED_SPEEDUP = 3.0
#: No individual sweep may fall below this on a 4+-core host.
PER_SWEEP_FLOOR = 2.0
#: ``--quick`` fails when a sweep's measured speedup drops below
#: committed_speedup / REGRESSION_FACTOR (same-or-more cores only).
REGRESSION_FACTOR = 2.0


def default_jobs() -> int:
    """min(cores, 8), but never below 2: the point of the benchmark is
    the sharded pool path, so even a single-core host measures it (and
    honestly records the slowdown pool overhead costs there)."""
    return max(min(os.cpu_count() or 1, 8), 2)


def geometry_grid(quick: bool) -> list[SocConfig]:
    """4 distinct L1 groups so ``plan_shards`` fills 4 workers without
    splitting (quick: 2 groups for a 2-worker smoke)."""
    l1s = [(16 * KB, 2), (32 * KB, 4), (64 * KB, 4), (128 * KB, 8)]
    llcs = [(512 * KB, 8), (1 * MB, 8), (2 * MB, 8), (4 * MB, 16)]
    if quick:
        l1s = l1s[1:3]
    return [
        SocConfig(
            l1=CacheConfig(size_bytes=l1_bytes, associativity=l1_ways),
            l2=CacheConfig(
                size_bytes=llc_bytes,
                associativity=llc_ways,
                hit_latency_cycles=20,
            ),
        )
        for l1_bytes, l1_ways in l1s
        for llc_bytes, llc_ways in llcs
    ]


def _concat(traces) -> MemoryTrace:
    """One multi-phase trace; each phase lives in its own address range."""
    addresses = []
    writes = []
    offset = 0
    for trace in traces:
        addresses.append(trace.addresses + np.uint64(offset))
        writes.append(trace.is_write)
        offset += 1 << 28
    return MemoryTrace(
        addresses=np.concatenate(addresses), is_write=np.concatenate(writes)
    )


def _sweeps(quick: bool) -> list:
    """(name, build_trace) per swept workload mix.

    Each mix concatenates one kernel at several working-set scales that
    straddle the L1 grid (24 kB…192 kB against 16–128 kB L1s), so every
    L1 geometry produces a *distinct* miss stream.  That matters for
    what this benchmark measures: the batch engine content-addresses
    LLC passes by the L1 miss stream feeding them, so a pure streaming
    kernel — whose miss stream is identical under every L1 — collapses
    the whole grid onto a handful of shared passes that no shard plan
    can divide.  A working-set mix is both the representative case (the
    paper's packing/tiling sections are exactly about working sets vs
    cache capacity) and the parallelizable one: per-geometry passes are
    real, independent work the shards split.
    """
    reps = 8 if quick else 56
    # The last phase's working set exceeds every L1: it thrashes all
    # four geometries alike, which keeps the streams distinct while
    # evening out per-group work (small-L1 groups miss more on the
    # straddle phases, so an all-miss phase dilutes the imbalance the
    # shard plan would otherwise inherit).
    gemm_dims = [(96, 256), (96, 512), (192, 512), (384, 512), (768, 512)]
    tex_heights = [64, 128, 256, 512, 1024]
    tex_width = 192 if quick else 1408
    return [
        (
            "gemm_packed_mix",
            lambda: _concat(
                gemm_lhs_trace(m=m, k=k, n_blocks=reps, packed=True)
                for m, k in gemm_dims
            ),
        ),
        (
            "gemm_unpacked_mix",
            lambda: _concat(
                gemm_lhs_trace(
                    m=m, k=k, n_blocks=max(reps // 2, 2), packed=False
                )
                for m, k in gemm_dims
            ),
        ),
        (
            "compositing_linear_mix",
            lambda: _concat(
                compositing_trace(width=tex_width, height=h, tiled=False)
                for h in tex_heights
            ),
        ),
    ]


def _sweep_rows(artifact, socs, params, jobs: int) -> list:
    result = ConfigSweep(artifact, timing_params=params).evaluate(
        socs, batch=True, jobs=jobs
    )
    if jobs > 1 and not result.batched:
        raise AssertionError("parallel sweep degraded to the serial path")
    return result.rows


def measure(name, build_trace, socs, jobs: int, reps: int = 2) -> dict:
    """Time one sweep both ways and verify they still agree exactly."""
    params = TimingParameters()
    with tempfile.TemporaryDirectory() as tmp:
        artifact = TraceArtifact.from_trace(build_trace(), workload="bench")
        artifact.save(Path(tmp) / "bench.trace")
        single = _sweep_rows(artifact, socs, params, jobs=1)
        sharded = _sweep_rows(artifact, socs, params, jobs=jobs)
        if sharded != single:
            raise AssertionError(
                "%s: sharded sweep diverged from single-process" % name
            )
        baseline_s = _best(
            lambda: _sweep_rows(artifact, socs, params, jobs=1), reps
        )
        parallel_s = _best(
            lambda: _sweep_rows(artifact, socs, params, jobs=jobs), reps
        )
    return {
        "name": name,
        "configs": len(socs),
        "accesses": artifact.num_accesses,
        "jobs": jobs,
        "baseline_s": baseline_s,
        "parallel_s": parallel_s,
        "baseline_points_per_s": len(socs) / baseline_s,
        "parallel_points_per_s": len(socs) / parallel_s,
        "speedup": baseline_s / parallel_s,
    }


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _geomean(speedups) -> float:
    return float(np.exp(np.mean(np.log(speedups))))


def run(quick: bool, jobs: int | None = None) -> list:
    jobs = jobs or default_jobs()
    socs = geometry_grid(quick)
    return [measure(name, build, socs, jobs) for name, build in _sweeps(quick)]


def _print_rows(rows) -> None:
    for row in rows:
        print(
            "%-20s %2d configs  1-proc %8.3fs  jobs=%d %8.3fs  (%.1fx)"
            % (
                row["name"],
                row["configs"],
                row["baseline_s"],
                row["jobs"],
                row["parallel_s"],
                row["speedup"],
            )
        )
    print("headline speedup: %.1fx" % _geomean([r["speedup"] for r in rows]))


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

def test_parallel_rows_bit_identical():
    """Always runs: measure() raises if any sharded sweep diverges from
    the single-process rows, regardless of core count."""
    rows = run(quick=True, jobs=2)
    assert all(row["parallel_s"] > 0 for row in rows)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >=3x bar needs at least 4 cores to shard across",
)
def test_parallel_sweep_meets_speedup_bar():
    rows = run(quick=False)  # raises on divergence
    headline = _geomean([r["speedup"] for r in rows])
    assert headline >= REQUIRED_SPEEDUP, (
        "headline speedup only %.1fx over single-process batched" % headline
    )
    for row in rows:
        assert row["speedup"] >= PER_SWEEP_FLOOR, (
            "%s sweep only %.1fx over single-process batched"
            % (row["name"], row["speedup"])
        )


def test_grid_has_four_shardable_l1_groups():
    socs = geometry_grid(quick=False)
    assert len({(s.l1.size_bytes, s.l1.associativity) for s in socs}) == 4
    labels = [soc_cache_label(s) for s in socs]
    assert len(set(labels)) == len(labels) == 16


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def _check_regressions(rows) -> int:
    """Compare quick-size speedups against the committed baseline."""
    record = json.loads(JSON_PATH.read_text())
    cores = os.cpu_count() or 1
    if cores < record.get("cpu_count", 1):
        print(
            "skipping regression check: %d cores here, baseline recorded "
            "on %d" % (cores, record["cpu_count"])
        )
        return 0
    committed = {r["name"]: r for r in record["quick_sweeps"]}
    failures = []
    for row in rows:
        baseline = committed.get(row["name"])
        if baseline is None:
            continue  # new sweep, no baseline yet
        floor = baseline["speedup"] / REGRESSION_FACTOR
        if row["speedup"] < floor:
            failures.append(
                "%s: %.2fx, below %.2fx (committed %.2fx / %g)"
                % (
                    row["name"],
                    row["speedup"],
                    floor,
                    baseline["speedup"],
                    REGRESSION_FACTOR,
                )
            )
    for failure in failures:
        print("PERF REGRESSION %s" % failure)
    if not failures:
        print("no sweep regressed more than %gx vs baseline" % REGRESSION_FACTOR)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="perf-smoke mode: quick sizes, compare against the committed "
        "baseline instead of rewriting it",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel path (default: min(cores, 8))",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs or default_jobs()
    if args.quick:
        rows = run(quick=True, jobs=jobs)
        _print_rows(rows)
        return _check_regressions(rows)
    full_rows = run(quick=False, jobs=jobs)
    quick_rows = run(quick=True, jobs=jobs)
    record = {
        "bench": "parallel_batch",
        "generated_by": "benchmarks/bench_parallel_batch.py",
        "cpu_count": os.cpu_count() or 1,
        "jobs": jobs,
        "sweeps": full_rows,
        "quick_sweeps": quick_rows,
        "headline_speedup": _geomean([r["speedup"] for r in full_rows]),
    }
    with open(JSON_PATH, "w") as f:
        json.dump(record, f, indent=2)
        f.write("\n")
    _print_rows(full_rows)
    print("wrote %s" % JSON_PATH)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
