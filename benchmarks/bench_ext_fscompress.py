"""Extension: user-transparent file-system compression (Section 4.3.2)."""

from repro.workloads.chrome.fscompress import FsCompressionModel, FsConfig

MB = 1024.0 * 1024.0


def test_fs_compression(benchmark):
    model = FsCompressionModel()
    results = benchmark.pedantic(
        model.compare, args=(400 * MB, 100 * MB), rounds=1, iterations=1
    )
    print()
    for r in results:
        print(
            "%-18s %7.1f mJ  %6.1f ms  flash %5.0f MB"
            % (r.config.value, r.energy_j * 1e3, r.latency_s * 1e3,
               r.flash_bytes / MB)
        )
    by = {r.config: r for r in results}
    assert by[FsConfig.PIM].energy_j < by[FsConfig.NONE].energy_j
    assert by[FsConfig.PIM].energy_j < by[FsConfig.CPU].energy_j
