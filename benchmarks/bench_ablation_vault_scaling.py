"""Ablation: partitioning a PIM kernel across vaults.

The paper places one PIM core/accelerator per vault (16 total) and notes
that several targets are data-parallel.  This bench sweeps how many
vaults cooperate on one kernel: a 4K frame's macroblocks stripe across
vaults naturally, so sub-pixel interpolation scales until the per-vault
compute stops being the bottleneck.
"""

import pytest

from repro.core.offload import OffloadEngine
from repro.workloads.vp9.targets import sub_pixel_interpolation_target


@pytest.mark.parametrize("vaults", [1, 2, 4, 8, 16])
def test_vault_scaling(benchmark, vaults):
    engine = OffloadEngine()
    target = sub_pixel_interpolation_target(frames=10)
    execution = benchmark.pedantic(
        engine.run_pim_core, args=(target,), kwargs={"vaults_used": vaults},
        rounds=1, iterations=1,
    )
    cpu = engine.run_cpu(target)
    print(
        "\n%2d vaults: %.2f ms (%.2fx over CPU)"
        % (vaults, execution.time_s * 1e3, cpu.time_s / execution.time_s)
    )


def test_scaling_is_monotone_and_saturates():
    engine = OffloadEngine()
    target = sub_pixel_interpolation_target(frames=10)
    times = {
        v: engine.run_pim_core(target, vaults_used=v).time_s
        for v in (1, 2, 4, 8, 16)
    }
    values = [times[v] for v in (1, 2, 4, 8, 16)]
    assert all(b <= a * 1.001 for a, b in zip(values, values[1:]))
    # Near-linear early, sub-linear late (launch overheads + latency floor).
    early_gain = times[1] / times[4]
    late_gain = times[4] / times[16]
    assert early_gain > late_gain * 0.9
