"""Ablation: deblocking-filter placement in the HW decoder (Section 6.3.2).

The paper moves the deblocking filter into memory alongside MC, even
though the filter itself generates little off-chip traffic, because
leaving it on the SoC would force the reconstructed frame to bounce
between memory and the chip.  This bench quantifies that choice: PIM-MC
with an on-SoC deblocking filter pays for two extra reconstructed-frame
trips per frame.
"""

from repro.energy.components import default_energy_parameters
from repro.workloads.vp9.hardware import HardwareDecoderModel, PimPlacement


def energy_with_deblock_on_soc(model: HardwareDecoderModel) -> float:
    """PIM-Acc but with deblocking kept on the SoC: the reconstructed
    frame crosses the channel twice more (out for filtering, back in)."""
    base = model.energy(False, PimPlacement.PIM_ACC)
    t = model.traffic(False)
    recon = t.components["Reconstructed Frame"]
    params = default_energy_parameters()
    extra = 2 * recon * params.offchip_energy_per_byte
    return base.total + extra


def test_deblock_placement(benchmark):
    model = HardwareDecoderModel(3840, 2160)
    in_memory = benchmark.pedantic(
        lambda: model.energy(False, PimPlacement.PIM_ACC).total,
        rounds=1, iterations=1,
    )
    on_soc = energy_with_deblock_on_soc(model)
    print(
        "\ndeblock in memory: %.2f mJ; deblock on SoC: %.2f mJ (+%.0f%%)"
        % (in_memory * 1e3, on_soc * 1e3, 100 * (on_soc / in_memory - 1))
    )
    assert on_soc > in_memory * 1.1  # the paper's design choice pays off
