"""Extension: end-to-end consumer scenarios with PIM."""

from repro.analysis.scenarios import evaluate_all


def test_scenarios(benchmark):
    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    print()
    for r in results:
        print(
            "%-32s -%4.0f%% energy, %.2fx faster, +%.0f battery min"
            % (r.scenario, 100 * r.energy_reduction, r.speedup,
               r.battery_minutes_saved())
        )
        assert r.energy_reduction > 0.05
